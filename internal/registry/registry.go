// Package registry implements the registration and authentication
// mechanisms of §3: consumers “use typical advertising, discovery,
// registration, authentication and publish/subscribe mechanisms to
// identify, subscribe to, and receive data streams of interest”.
//
// A consumer registers under a unique name with a set of capability
// permissions and receives an HMAC-signed bearer token. Every privileged
// middleware operation (subscribing, actuating, hinting, reading location
// streams, reporting state to the Super Coordinator) authenticates the
// token and checks the corresponding permission — including the paper's
// distinguished “trusted applications” that may provide advance warning of
// changing needs and override sensor-management policies (§9).
package registry

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/sim"
)

// Permission is the bit set of capabilities granted to a consumer.
type Permission uint8

const (
	// PermSubscribe allows subscribing to ordinary data streams.
	PermSubscribe Permission = 1 << iota
	// PermActuate allows submitting stream-update requests on the return
	// actuation path.
	PermActuate
	// PermHint allows supplying location hints to the Location Service.
	PermHint
	// PermLocation allows subscribing to the protected location streams
	// (§2: “location information may be regarded as sensitive and should
	// be protected by additional security mechanisms”).
	PermLocation
	// PermTrusted marks a trusted application: it may report state changes
	// to the Super Coordinator and override resource-management policies.
	PermTrusted
)

// Has reports whether every permission in q is granted.
func (p Permission) Has(q Permission) bool { return p&q == q }

// String lists granted permissions, e.g. "subscribe|actuate".
func (p Permission) String() string {
	if p == 0 {
		return "none"
	}
	names := []struct {
		bit  Permission
		name string
	}{
		{PermSubscribe, "subscribe"},
		{PermActuate, "actuate"},
		{PermHint, "hint"},
		{PermLocation, "location"},
		{PermTrusted, "trusted"},
	}
	var parts []string
	for _, n := range names {
		if p.Has(n.bit) {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, "|")
}

// Identity is a registered consumer.
type Identity struct {
	Name         string
	Permissions  Permission
	RegisteredAt time.Time
}

// Token is a bearer credential returned by Register.
type Token string

// Registry errors.
var (
	ErrNameTaken  = errors.New("registry: name already registered")
	ErrBadToken   = errors.New("registry: malformed or forged token")
	ErrRevoked    = errors.New("registry: consumer revoked")
	ErrUnknown    = errors.New("registry: unknown consumer")
	ErrPermission = errors.New("registry: permission denied")
	ErrEmptyName  = errors.New("registry: empty consumer name")
)

// Registry issues and verifies consumer credentials.
type Registry struct {
	secret []byte
	clock  sim.Clock

	mu     sync.Mutex
	byName map[string]Identity
}

// New creates a Registry signing tokens with the deployment secret. New
// panics on an empty secret (a deployment configuration error).
func New(secret []byte, clock sim.Clock) *Registry {
	if len(secret) == 0 {
		panic("registry: empty secret")
	}
	cp := make([]byte, len(secret))
	copy(cp, secret)
	return &Registry{
		secret: cp,
		clock:  clock,
		byName: make(map[string]Identity),
	}
}

// Register adds a consumer and returns its bearer token. The HMAC is
// computed after the registry lock is released — it only needs the
// immutable signing secret — so minting never serialises other
// registrations or authentications.
func (r *Registry) Register(name string, perms Permission) (Token, error) {
	if name == "" {
		return "", ErrEmptyName
	}
	now := r.clock.Now()
	r.mu.Lock()
	if _, taken := r.byName[name]; taken {
		r.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	r.byName[name] = Identity{Name: name, Permissions: perms, RegisteredAt: now}
	r.mu.Unlock()
	return r.mint(name, perms), nil
}

func (r *Registry) mint(name string, perms Permission) Token {
	body := encodeBody(name, perms)
	mac := r.sign(body)
	return Token(body + "." + base64.RawURLEncoding.EncodeToString(mac))
}

func encodeBody(name string, perms Permission) string {
	return base64.RawURLEncoding.EncodeToString([]byte(name)) + "." +
		base64.RawURLEncoding.EncodeToString([]byte{byte(perms)})
}

func (r *Registry) sign(body string) []byte {
	h := hmac.New(sha256.New, r.secret)
	h.Write([]byte(body))
	return h.Sum(nil)
}

// Authenticate verifies a token and returns the live identity. It fails
// when the token is malformed or forged, the consumer was never
// registered, it was revoked, or its permissions changed since minting.
//
// The HMAC verification runs before the registry lock is taken (the
// signing secret is immutable), so concurrent authentications — every
// privileged facade call makes one — only serialise on the short
// identity-map lookup, not on the crypto.
func (r *Registry) Authenticate(tok Token) (Identity, error) {
	parts := strings.Split(string(tok), ".")
	if len(parts) != 3 {
		return Identity{}, ErrBadToken
	}
	body := parts[0] + "." + parts[1]
	mac, err := base64.RawURLEncoding.DecodeString(parts[2])
	if err != nil || !hmac.Equal(mac, r.sign(body)) {
		return Identity{}, ErrBadToken
	}
	nameRaw, err := base64.RawURLEncoding.DecodeString(parts[0])
	if err != nil {
		return Identity{}, ErrBadToken
	}
	permRaw, err := base64.RawURLEncoding.DecodeString(parts[1])
	if err != nil || len(permRaw) != 1 {
		return Identity{}, ErrBadToken
	}
	name, perms := string(nameRaw), Permission(permRaw[0])

	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.byName[name]
	if !ok {
		return Identity{}, fmt.Errorf("%w: %q", ErrRevoked, name)
	}
	if id.Permissions != perms {
		// Permissions were changed after this token was minted; force
		// re-registration rather than honouring stale capabilities.
		return Identity{}, ErrBadToken
	}
	return id, nil
}

// Require authenticates tok and verifies it grants every permission in
// need, returning the identity on success.
func (r *Registry) Require(tok Token, need Permission) (Identity, error) {
	id, err := r.Authenticate(tok)
	if err != nil {
		return Identity{}, err
	}
	if !id.Permissions.Has(need) {
		return Identity{}, fmt.Errorf("%w: %q lacks %v", ErrPermission, id.Name, need&^id.Permissions)
	}
	return id, nil
}

// Revoke removes a consumer; its outstanding tokens stop verifying.
// It reports whether the name was registered.
func (r *Registry) Revoke(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.byName[name]
	delete(r.byName, name)
	return ok
}

// Lookup returns the identity registered under name.
func (r *Registry) Lookup(name string) (Identity, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.byName[name]
	return id, ok
}

// Identities lists all registered consumers sorted by name.
func (r *Registry) Identities() []Identity {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Identity, 0, len(r.byName))
	for _, id := range r.byName {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

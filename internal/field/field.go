// Package field models the physical deployment area and the mobility of
// sensors within it. The paper assumes mobile sensors that “occasionally
// roam outside the reception zone” (§4.2); the mobility models here
// produce exactly that behaviour deterministically.
//
// A Mobility is a position as a function of time. Stateful models
// (RandomWaypoint) assume time is queried monotonically, which holds for
// all clock-driven simulation code in this repository.
package field

import (
	"math/rand/v2"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/sim"
)

// Mobility yields a node's position at a given time. Implementations may
// be stateful and require monotonically non-decreasing query times.
type Mobility interface {
	Position(at time.Time) geo.Point
}

// Static is a Mobility that never moves.
type Static struct {
	P geo.Point
}

// Position implements Mobility.
func (s Static) Position(time.Time) geo.Point { return s.P }

// Linear drifts from Start with a constant velocity (metres/second),
// clamped to Bounds when Bounds is non-empty. It models flow-borne
// sensors such as the water-course scenario of §6.1.
type Linear struct {
	Start    geo.Point
	Velocity geo.Point // metres per second
	Bounds   geo.Rect  // zero Rect = unbounded
	Epoch    time.Time // time at which the node is at Start
}

// Position implements Mobility.
func (l Linear) Position(at time.Time) geo.Point {
	dt := at.Sub(l.Epoch).Seconds()
	p := l.Start.Add(l.Velocity.Scale(dt))
	if l.Bounds != (geo.Rect{}) {
		p = l.Bounds.Clamp(p)
	}
	return p
}

// Patrol follows a closed loop of waypoints at constant speed, forever.
// It models a patrolling target in the reconnaissance scenario.
type Patrol struct {
	Waypoints []geo.Point
	Speed     float64 // metres per second, must be > 0
	Epoch     time.Time

	// lazily computed
	legs   []float64
	total  float64
	inited bool
}

func (p *Patrol) init() {
	if p.inited {
		return
	}
	n := len(p.Waypoints)
	p.legs = make([]float64, n)
	for i := 0; i < n; i++ {
		p.legs[i] = p.Waypoints[i].Dist(p.Waypoints[(i+1)%n])
		p.total += p.legs[i]
	}
	p.inited = true
}

// Position implements Mobility.
func (p *Patrol) Position(at time.Time) geo.Point {
	if len(p.Waypoints) == 0 {
		return geo.Point{}
	}
	if len(p.Waypoints) == 1 || p.Speed <= 0 {
		return p.Waypoints[0]
	}
	p.init()
	if p.total == 0 {
		return p.Waypoints[0]
	}
	dist := p.Speed * at.Sub(p.Epoch).Seconds()
	for dist < 0 {
		dist += p.total
	}
	for dist >= p.total {
		dist -= p.total
	}
	for i, leg := range p.legs {
		if dist <= leg {
			if leg == 0 {
				return p.Waypoints[i]
			}
			return p.Waypoints[i].Lerp(p.Waypoints[(i+1)%len(p.Waypoints)], dist/leg)
		}
		dist -= leg
	}
	return p.Waypoints[0]
}

// RandomWaypoint is the classic mobility model: pick a uniform destination
// in Bounds, travel to it at a uniform speed in [SpeedMin, SpeedMax],
// pause, repeat. Deterministic for a given seed; query times must be
// monotonic.
type RandomWaypoint struct {
	bounds             geo.Rect
	speedMin, speedMax float64
	pause              time.Duration
	rng                *rand.Rand

	pos       geo.Point
	dest      geo.Point
	speed     float64
	legStart  time.Time
	legEnd    time.Time
	pauseEnd  time.Time
	travelled bool // false while paused
	started   bool
}

// NewRandomWaypoint creates a RandomWaypoint walker starting at a random
// point of bounds. NewRandomWaypoint panics when speeds are non-positive
// or speedMax < speedMin (configuration programming errors).
func NewRandomWaypoint(bounds geo.Rect, speedMin, speedMax float64, pause time.Duration, seed uint64) *RandomWaypoint {
	if speedMin <= 0 || speedMax < speedMin {
		panic("field: invalid speed range")
	}
	rng := sim.NewRand(sim.SubSeed(seed, "field.rwp"))
	w := &RandomWaypoint{
		bounds:   bounds,
		speedMin: speedMin,
		speedMax: speedMax,
		pause:    pause,
		rng:      rng,
	}
	w.pos = w.randomPoint()
	return w
}

func (w *RandomWaypoint) randomPoint() geo.Point {
	return geo.Pt(
		w.bounds.Min.X+w.rng.Float64()*w.bounds.Dx(),
		w.bounds.Min.Y+w.rng.Float64()*w.bounds.Dy(),
	)
}

func (w *RandomWaypoint) newLeg(at time.Time) {
	w.dest = w.randomPoint()
	w.speed = w.speedMin + w.rng.Float64()*(w.speedMax-w.speedMin)
	w.legStart = at
	d := w.pos.Dist(w.dest)
	w.legEnd = at.Add(time.Duration(d / w.speed * float64(time.Second)))
	w.travelled = true
}

// Position implements Mobility.
func (w *RandomWaypoint) Position(at time.Time) geo.Point {
	if !w.started {
		w.started = true
		w.newLeg(at)
	}
	for {
		if w.travelled {
			if at.Before(w.legEnd) {
				frac := 0.0
				if total := w.legEnd.Sub(w.legStart); total > 0 {
					frac = float64(at.Sub(w.legStart)) / float64(total)
				}
				return w.pos.Lerp(w.dest, frac)
			}
			// Arrived: pause.
			w.pos = w.dest
			w.travelled = false
			w.pauseEnd = w.legEnd.Add(w.pause)
			continue
		}
		if at.Before(w.pauseEnd) {
			return w.pos
		}
		w.newLeg(w.pauseEnd)
	}
}

// GridPositions lays out n points on a near-square grid covering bounds,
// each at the centre of its cell — the natural arrangement for the
// receiver and transmitter arrays.
func GridPositions(bounds geo.Rect, n int) []geo.Point {
	if n <= 0 {
		return nil
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	pts := make([]geo.Point, 0, n)
	cw, ch := bounds.Dx()/float64(cols), bounds.Dy()/float64(rows)
	for i := 0; i < n; i++ {
		c, r := i%cols, i/cols
		pts = append(pts, geo.Pt(
			bounds.Min.X+(float64(c)+0.5)*cw,
			bounds.Min.Y+(float64(r)+0.5)*ch,
		))
	}
	return pts
}

// RandomPositions scatters n uniform points over bounds using the given
// seed.
func RandomPositions(bounds geo.Rect, n int, seed uint64) []geo.Point {
	rng := sim.NewRand(sim.SubSeed(seed, "field.scatter"))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(
			bounds.Min.X+rng.Float64()*bounds.Dx(),
			bounds.Min.Y+rng.Float64()*bounds.Dy(),
		)
	}
	return pts
}

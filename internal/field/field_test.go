package field

import (
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

func TestStatic(t *testing.T) {
	m := Static{P: geo.Pt(3, 4)}
	for _, dt := range []time.Duration{0, time.Second, time.Hour} {
		if got := m.Position(epoch.Add(dt)); got != geo.Pt(3, 4) {
			t.Fatalf("Position(+%v) = %v, want (3,4)", dt, got)
		}
	}
}

func TestLinearDrift(t *testing.T) {
	m := Linear{Start: geo.Pt(0, 0), Velocity: geo.Pt(2, -1), Epoch: epoch}
	got := m.Position(epoch.Add(10 * time.Second))
	if got != geo.Pt(20, -10) {
		t.Fatalf("Position = %v, want (20,-10)", got)
	}
}

func TestLinearClampsToBounds(t *testing.T) {
	m := Linear{
		Start:    geo.Pt(0, 0),
		Velocity: geo.Pt(10, 0),
		Bounds:   geo.RectWH(0, 0, 50, 50),
		Epoch:    epoch,
	}
	if got := m.Position(epoch.Add(time.Minute)); got != geo.Pt(50, 0) {
		t.Fatalf("Position = %v, want clamped (50,0)", got)
	}
}

func TestPatrolLoops(t *testing.T) {
	m := &Patrol{
		Waypoints: []geo.Point{geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(10, 10), geo.Pt(0, 10)},
		Speed:     1,
		Epoch:     epoch,
	}
	tests := []struct {
		dt   time.Duration
		want geo.Point
	}{
		{0, geo.Pt(0, 0)},
		{5 * time.Second, geo.Pt(5, 0)},
		{10 * time.Second, geo.Pt(10, 0)},
		{15 * time.Second, geo.Pt(10, 5)},
		{40 * time.Second, geo.Pt(0, 0)}, // full 40m perimeter
		{45 * time.Second, geo.Pt(5, 0)}, // second lap
		{85 * time.Second, geo.Pt(5, 0)}, // third lap
	}
	for _, tt := range tests {
		got := m.Position(epoch.Add(tt.dt))
		if got.Dist(tt.want) > 1e-9 {
			t.Errorf("Position(+%v) = %v, want %v", tt.dt, got, tt.want)
		}
	}
}

func TestPatrolDegenerateCases(t *testing.T) {
	if got := (&Patrol{}).Position(epoch); got != (geo.Point{}) {
		t.Errorf("empty patrol = %v, want origin", got)
	}
	one := &Patrol{Waypoints: []geo.Point{geo.Pt(7, 7)}, Speed: 1, Epoch: epoch}
	if got := one.Position(epoch.Add(time.Hour)); got != geo.Pt(7, 7) {
		t.Errorf("single waypoint = %v, want (7,7)", got)
	}
	same := &Patrol{Waypoints: []geo.Point{geo.Pt(1, 1), geo.Pt(1, 1)}, Speed: 1, Epoch: epoch}
	if got := same.Position(epoch.Add(time.Second)); got != geo.Pt(1, 1) {
		t.Errorf("zero-length loop = %v, want (1,1)", got)
	}
}

func TestRandomWaypointStaysInBounds(t *testing.T) {
	bounds := geo.RectWH(0, 0, 100, 100)
	w := NewRandomWaypoint(bounds, 1, 5, 2*time.Second, 42)
	const eps = 1e-6
	for i := 0; i <= 10_000; i++ {
		p := w.Position(epoch.Add(time.Duration(i) * 100 * time.Millisecond))
		if p.X < -eps || p.X > 100+eps || p.Y < -eps || p.Y > 100+eps {
			t.Fatalf("position %v escaped bounds at step %d", p, i)
		}
	}
}

func TestRandomWaypointMoves(t *testing.T) {
	w := NewRandomWaypoint(geo.RectWH(0, 0, 1000, 1000), 5, 10, 0, 1)
	p0 := w.Position(epoch)
	p1 := w.Position(epoch.Add(30 * time.Second))
	if p0.Dist(p1) < 1 {
		t.Fatalf("walker barely moved: %v -> %v", p0, p1)
	}
}

func TestRandomWaypointDeterministic(t *testing.T) {
	mk := func() []geo.Point {
		w := NewRandomWaypoint(geo.RectWH(0, 0, 100, 100), 1, 3, time.Second, 77)
		var pts []geo.Point
		for i := 0; i < 100; i++ {
			pts = append(pts, w.Position(epoch.Add(time.Duration(i)*time.Second)))
		}
		return pts
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRandomWaypointSpeedBounds(t *testing.T) {
	// Max displacement between consecutive seconds must respect speedMax.
	w := NewRandomWaypoint(geo.RectWH(0, 0, 500, 500), 2, 4, 0, 5)
	prev := w.Position(epoch)
	for i := 1; i < 500; i++ {
		cur := w.Position(epoch.Add(time.Duration(i) * time.Second))
		if d := prev.Dist(cur); d > 4+1e-6 {
			t.Fatalf("moved %v m in 1s, speedMax is 4", d)
		}
		prev = cur
	}
}

func TestNewRandomWaypointValidation(t *testing.T) {
	for _, tt := range []struct {
		name     string
		min, max float64
	}{
		{"zero min", 0, 5},
		{"negative", -1, 5},
		{"max below min", 5, 1},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			NewRandomWaypoint(geo.RectWH(0, 0, 1, 1), tt.min, tt.max, 0, 0)
		})
	}
}

func TestGridPositions(t *testing.T) {
	bounds := geo.RectWH(0, 0, 100, 100)
	tests := []struct {
		n int
	}{{0}, {1}, {4}, {5}, {9}, {16}, {17}}
	for _, tt := range tests {
		pts := GridPositions(bounds, tt.n)
		if len(pts) != tt.n {
			t.Fatalf("n=%d: got %d points", tt.n, len(pts))
		}
		seen := map[geo.Point]bool{}
		for _, p := range pts {
			if !bounds.Contains(p) {
				t.Fatalf("n=%d: point %v outside bounds", tt.n, p)
			}
			if seen[p] {
				t.Fatalf("n=%d: duplicate point %v", tt.n, p)
			}
			seen[p] = true
		}
	}
}

func TestGridPositionsCentered(t *testing.T) {
	pts := GridPositions(geo.RectWH(0, 0, 100, 100), 1)
	if pts[0] != geo.Pt(50, 50) {
		t.Fatalf("single grid point = %v, want centre", pts[0])
	}
}

func TestRandomPositions(t *testing.T) {
	bounds := geo.RectWH(-50, -50, 100, 100)
	pts := RandomPositions(bounds, 200, 9)
	if len(pts) != 200 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !bounds.Contains(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
	again := RandomPositions(bounds, 200, 9)
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatal("RandomPositions not deterministic for same seed")
		}
	}
}

package sim

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var testEpoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC) // ICDCSW'03 opening day

func TestVirtualClockNow(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	if !c.Now().Equal(testEpoch) {
		t.Fatalf("Now = %v, want %v", c.Now(), testEpoch)
	}
	c.Advance(3 * time.Second)
	if want := testEpoch.Add(3 * time.Second); !c.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", c.Now(), want)
	}
}

func TestVirtualClockFiresInOrder(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	var got []int
	c.AfterFunc(30*time.Millisecond, func() { got = append(got, 3) })
	c.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	c.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })
	if fired := c.Advance(time.Second); fired != 3 {
		t.Fatalf("fired %d, want 3", fired)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("fire order %v, want [1 2 3]", got)
		}
	}
}

func TestVirtualClockTieBreakBySchedulingOrder(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Millisecond, func() { got = append(got, i) })
	}
	c.Advance(time.Millisecond)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order %v, want ascending", got)
		}
	}
}

func TestVirtualClockCallbackSeesFireTime(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	var at time.Time
	c.AfterFunc(42*time.Millisecond, func() { at = c.Now() })
	c.Advance(time.Second)
	if want := testEpoch.Add(42 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback saw %v, want %v", at, want)
	}
}

func TestVirtualClockNestedScheduling(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	var got []string
	c.AfterFunc(10*time.Millisecond, func() {
		got = append(got, "outer")
		c.AfterFunc(5*time.Millisecond, func() { got = append(got, "inner") })
	})
	c.Advance(20 * time.Millisecond)
	if len(got) != 2 || got[0] != "outer" || got[1] != "inner" {
		t.Fatalf("got %v, want [outer inner]", got)
	}
}

func TestVirtualClockNestedBeyondWindowDeferred(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	fired := false
	c.AfterFunc(10*time.Millisecond, func() {
		c.AfterFunc(50*time.Millisecond, func() { fired = true })
	})
	c.Advance(20 * time.Millisecond)
	if fired {
		t.Fatal("inner timer fired before its deadline")
	}
	c.Advance(40 * time.Millisecond)
	if !fired {
		t.Fatal("inner timer did not fire after its deadline")
	}
}

func TestVirtualTimerStop(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	fired := false
	timer := c.AfterFunc(10*time.Millisecond, func() { fired = true })
	if !timer.Stop() {
		t.Fatal("first Stop should report true")
	}
	if timer.Stop() {
		t.Fatal("second Stop should report false")
	}
	c.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestVirtualTimerStopAfterFire(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	timer := c.AfterFunc(time.Millisecond, func() {})
	c.Advance(time.Second)
	if timer.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

func TestVirtualClockZeroAndNegativeDelay(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	n := 0
	c.AfterFunc(0, func() { n++ })
	c.AfterFunc(-time.Second, func() { n++ })
	c.Advance(0)
	if n != 2 {
		t.Fatalf("fired %d, want 2", n)
	}
}

func TestVirtualClockRunAll(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	depth := 0
	var schedule func()
	schedule = func() {
		if depth < 10 {
			depth++
			c.AfterFunc(time.Minute, schedule)
		}
	}
	c.AfterFunc(time.Minute, schedule)
	if fired := c.RunAll(); fired != 11 {
		t.Fatalf("RunAll fired %d, want 11", fired)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after RunAll, want 0", c.Pending())
	}
}

func TestVirtualClockNextDeadline(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline should report !ok with empty heap")
	}
	c.AfterFunc(5*time.Second, func() {})
	d, ok := c.NextDeadline()
	if !ok || !d.Equal(testEpoch.Add(5*time.Second)) {
		t.Fatalf("NextDeadline = %v/%v", d, ok)
	}
}

// Property: for any set of random delays, callbacks observe a
// non-decreasing clock and fire in sorted-delay order.
func TestVirtualClockOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		c := NewVirtualClock(testEpoch)
		want := make([]time.Duration, len(delays))
		var got []time.Duration
		for i, d := range delays {
			dd := time.Duration(d) * time.Millisecond
			want[i] = dd
			c.AfterFunc(dd, func() { got = append(got, c.Now().Sub(testEpoch)) })
		}
		c.RunAll()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVirtualClockConcurrentScheduling(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	var wg sync.WaitGroup
	var mu sync.Mutex
	count := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.AfterFunc(time.Duration(i)*time.Millisecond, func() {
					mu.Lock()
					count++
					mu.Unlock()
				})
			}
		}()
	}
	wg.Wait()
	c.RunAll()
	if count != 800 {
		t.Fatalf("count = %d, want 800", count)
	}
}

func TestRealClock(t *testing.T) {
	var c RealClock
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatal("RealClock.Now far in the past")
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RealClock.AfterFunc never fired")
	}
	timer := c.AfterFunc(time.Hour, func() {})
	if !timer.Stop() {
		t.Fatal("Stop on pending real timer should report true")
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	var fires []time.Time
	ticker := NewTicker(c, 10*time.Millisecond, func(now time.Time) { fires = append(fires, now) })
	defer ticker.Stop()
	c.Advance(35 * time.Millisecond)
	if len(fires) != 3 {
		t.Fatalf("fired %d times, want 3", len(fires))
	}
	for i, at := range fires {
		want := testEpoch.Add(time.Duration(i+1) * 10 * time.Millisecond)
		if !at.Equal(want) {
			t.Fatalf("fire %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	n := 0
	ticker := NewTicker(c, 10*time.Millisecond, func(time.Time) { n++ })
	c.Advance(25 * time.Millisecond)
	ticker.Stop()
	ticker.Stop() // idempotent
	c.Advance(100 * time.Millisecond)
	if n != 2 {
		t.Fatalf("fired %d times after stop, want 2", n)
	}
}

func TestTickerSetPeriod(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	n := 0
	ticker := NewTicker(c, time.Hour, func(time.Time) { n++ })
	defer ticker.Stop()
	ticker.SetPeriod(time.Millisecond)
	c.Advance(10 * time.Millisecond)
	if n != 10 {
		t.Fatalf("fired %d times after SetPeriod, want 10", n)
	}
	if ticker.Period() != time.Millisecond {
		t.Fatalf("Period = %v, want 1ms", ticker.Period())
	}
}

func TestTickerPanicsOnBadPeriod(t *testing.T) {
	c := NewVirtualClock(testEpoch)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-positive period")
		}
	}()
	NewTicker(c, 0, func(time.Time) {})
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should give identical streams")
		}
	}
	cDiff := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == cDiff.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSubSeedIndependence(t *testing.T) {
	seen := map[uint64]string{}
	labels := []string{"radio", "sensor/1", "sensor/2", "mobility", "field"}
	for _, l := range labels {
		s := SubSeed(7, l)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SubSeed collision between %q and %q", prev, l)
		}
		seen[s] = l
	}
	if SubSeed(7, "radio") != SubSeed(7, "radio") {
		t.Fatal("SubSeed not deterministic")
	}
	if SubSeed(7, "radio") == SubSeed(8, "radio") {
		t.Fatal("SubSeed ignores parent seed")
	}
}

// TestScheduleFuncOrderingMatchesAfterFunc: fire-and-forget events share
// the same (deadline, schedule-order) discipline as AfterFunc timers,
// including interleaved with them, and survive recycling across rounds.
func TestScheduleFuncOrderingMatchesAfterFunc(t *testing.T) {
	var _ Scheduler = (*VirtualClock)(nil)
	var _ Scheduler = RealClock{}

	clock := NewVirtualClock(time.Unix(0, 0))
	for round := 0; round < 3; round++ { // later rounds run on pooled events
		var got []int
		clock.ScheduleFunc(2*time.Millisecond, func() { got = append(got, 2) })
		clock.AfterFunc(time.Millisecond, func() { got = append(got, 1) })
		clock.ScheduleFunc(time.Millisecond, func() { got = append(got, 11) })
		clock.ScheduleFunc(0, func() { got = append(got, 0) })
		clock.ScheduleFunc(-time.Second, func() { got = append(got, 0) }) // negative = zero
		clock.Advance(5 * time.Millisecond)
		want := []int{0, 0, 1, 11, 2}
		if len(got) != len(want) {
			t.Fatalf("round %d: fired %v, want %v", round, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: fired %v, want %v", round, got, want)
			}
		}
	}
}

// TestScheduleFuncNestedReschedule: a pooled event's callback may itself
// call ScheduleFunc (the radio delivery path does when a Deliver
// re-broadcasts) without tripping over the recycling.
func TestScheduleFuncNestedReschedule(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 5 {
			clock.ScheduleFunc(time.Millisecond, rec)
		}
	}
	clock.ScheduleFunc(time.Millisecond, rec)
	clock.RunAll()
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
}

func TestNewRandIsUsableSource(t *testing.T) {
	r := NewRand(1)
	// Sanity: values in range and not constant.
	var distinct bool
	first := r.IntN(1000)
	for i := 0; i < 20; i++ {
		v := r.IntN(1000)
		if v < 0 || v >= 1000 {
			t.Fatalf("IntN out of range: %d", v)
		}
		if v != first {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("RNG appears constant")
	}
	var _ *rand.Rand = r
}

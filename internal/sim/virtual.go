package sim

import (
	"container/heap"
	"sync"
	"time"
)

// VirtualClock is a deterministic Clock driven explicitly by the test or
// simulation harness. Timers fire in (deadline, schedule-order) order when
// the caller advances the clock; callbacks run synchronously on the
// advancing goroutine, one at a time, so a run with a given seed is fully
// reproducible.
//
// Callbacks may schedule further timers (including zero-delay ones); they
// fire within the same Advance call if they fall inside the advanced
// window.
type VirtualClock struct {
	mu   sync.Mutex
	now  time.Time
	seq  uint64
	heap eventHeap
}

// NewVirtualClock returns a VirtualClock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

type event struct {
	when    time.Time
	seq     uint64 // tie-break: schedule order
	fn      func()
	stopped bool
	pooled  bool // fire-and-forget (ScheduleFunc): recycle after firing
	index   int  // heap index, -1 once popped
}

// eventPool recycles fire-and-forget events (ScheduleFunc). Events with
// a Timer handle are never pooled: the handle may outlive the firing.
var eventPool = sync.Pool{New: func() any { return new(event) }}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc implements Clock. Negative durations are treated as zero.
func (c *VirtualClock) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ev := &event{when: c.now.Add(d), seq: c.seq, fn: f}
	c.seq++
	heap.Push(&c.heap, ev)
	return &virtualTimer{clock: c, ev: ev}
}

// ScheduleFunc implements Scheduler: like AfterFunc but without a
// cancellation handle, so the event is drawn from (and returned to) a
// pool — the radio medium's per-delivery scheduling path allocates
// nothing at steady state. Negative durations are treated as zero.
func (c *VirtualClock) ScheduleFunc(d time.Duration, f func()) {
	if d < 0 {
		d = 0
	}
	ev := eventPool.Get().(*event)
	c.mu.Lock()
	defer c.mu.Unlock()
	*ev = event{when: c.now.Add(d), seq: c.seq, fn: f, pooled: true}
	c.seq++
	heap.Push(&c.heap, ev)
}

type virtualTimer struct {
	clock *VirtualClock
	ev    *event
}

// Stop implements Timer.
func (t *virtualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.ev.stopped || t.ev.index == -1 {
		return false
	}
	t.ev.stopped = true
	heap.Remove(&t.clock.heap, t.ev.index)
	return true
}

// Advance moves the clock forward by d, firing every timer whose deadline
// falls within the window in deterministic order. It returns the number of
// callbacks fired.
func (c *VirtualClock) Advance(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	target := c.now.Add(d)
	c.mu.Unlock()
	return c.RunUntil(target)
}

// RunUntil fires timers in order until the clock reaches t. Timers
// scheduled by callbacks are honoured if they fall at or before t. The
// clock finishes exactly at t (unless it is already past t, in which case
// nothing happens).
func (c *VirtualClock) RunUntil(t time.Time) int {
	fired := 0
	for {
		c.mu.Lock()
		if len(c.heap) == 0 || c.heap[0].when.After(t) {
			if c.now.Before(t) {
				c.now = t
			}
			c.mu.Unlock()
			return fired
		}
		ev := heap.Pop(&c.heap).(*event)
		if ev.when.After(c.now) {
			c.now = ev.when
		}
		c.mu.Unlock()
		fire(ev)
		fired++
	}
}

// fire runs an event's callback and recycles fire-and-forget events.
func fire(ev *event) {
	fn := ev.fn
	if ev.pooled {
		*ev = event{}
		eventPool.Put(ev)
	}
	fn()
}

// RunAll fires every pending timer (including ones scheduled by callbacks)
// until none remain or the safety limit of one million callbacks is hit,
// and returns the number fired. It is intended for draining a simulation
// at shutdown.
func (c *VirtualClock) RunAll() int {
	const limit = 1_000_000
	fired := 0
	for fired < limit {
		c.mu.Lock()
		if len(c.heap) == 0 {
			c.mu.Unlock()
			return fired
		}
		ev := heap.Pop(&c.heap).(*event)
		if ev.when.After(c.now) {
			c.now = ev.when
		}
		c.mu.Unlock()
		fire(ev)
		fired++
	}
	return fired
}

// Pending returns the number of timers currently scheduled.
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.heap)
}

// NextDeadline returns the deadline of the earliest pending timer.
// ok is false when no timers are pending.
func (c *VirtualClock) NextDeadline() (deadline time.Time, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.heap) == 0 {
		return time.Time{}, false
	}
	return c.heap[0].when, true
}

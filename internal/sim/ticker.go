package sim

import (
	"sync"
	"time"
)

// Ticker invokes a callback at a fixed period on a Clock until stopped. It
// is the scheduling primitive behind periodic sensor sampling and
// coordinator sweeps; unlike a raw time.Ticker it works identically on
// virtual and real clocks and never leaks its timer.
type Ticker struct {
	clock  Clock
	fn     func(now time.Time)
	mu     sync.Mutex
	period time.Duration
	timer  Timer
	done   bool
}

// NewTicker schedules fn to run every period on clock, starting one period
// from now. Callers must Stop the ticker when finished. period must be
// positive; NewTicker panics otherwise (a programming error, caught in
// tests).
func NewTicker(clock Clock, period time.Duration, fn func(now time.Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{clock: clock, fn: fn, period: period}
	t.timer = clock.AfterFunc(period, t.tick)
	return t
}

func (t *Ticker) tick() {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	// Re-arm before invoking so that the callback observes a live ticker
	// and so SetPeriod from inside the callback takes effect next round.
	t.timer = t.clock.AfterFunc(t.period, t.tick)
	fn := t.fn
	t.mu.Unlock()
	fn(t.clock.Now())
}

// SetPeriod changes the tick period. The new period takes effect from the
// next firing. It is how actuated sample-rate changes are applied to a
// running sensor stream.
func (t *Ticker) SetPeriod(period time.Duration) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.period = period
	// Re-arm immediately so a long-period timer does not delay the switch
	// to a short period.
	t.timer.Stop()
	t.timer = t.clock.AfterFunc(t.period, t.tick)
}

// Period returns the current tick period.
func (t *Ticker) Period() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.period
}

// Stop cancels the ticker. It is idempotent.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	t.timer.Stop()
}

// Package sim provides the deterministic simulation kernel underneath the
// Garnet reproduction: a pluggable clock abstraction with a heap-based
// virtual implementation (so every experiment is replayable bit-for-bit
// from a seed) and fork-able pseudo-random streams.
//
// The middleware itself is written against the Clock interface and never
// reads the wall clock directly; examples run it on RealClock, tests and
// the benchmark harness on VirtualClock.
package sim

import "time"

// Clock abstracts time for the middleware and the simulator.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc schedules f to run after d has elapsed on this clock and
	// returns a handle that can cancel it. Implementations may run f on an
	// arbitrary goroutine (RealClock) or synchronously inside an Advance
	// call (VirtualClock); f must therefore not block.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancellation handle returned by Clock.AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// callback from firing.
	Stop() bool
}

// RealClock is a Clock backed by the runtime's wall clock.
// The zero value is ready to use.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (RealClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

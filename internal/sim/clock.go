// Package sim provides the deterministic simulation kernel underneath the
// Garnet reproduction: a pluggable clock abstraction with a heap-based
// virtual implementation (so every experiment is replayable bit-for-bit
// from a seed) and fork-able pseudo-random streams.
//
// The middleware itself is written against the Clock interface and never
// reads the wall clock directly; examples run it on RealClock, tests and
// the benchmark harness on VirtualClock.
package sim

import "time"

// Clock abstracts time for the middleware and the simulator.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc schedules f to run after d has elapsed on this clock and
	// returns a handle that can cancel it. Implementations may run f on an
	// arbitrary goroutine (RealClock) or synchronously inside an Advance
	// call (VirtualClock); f must therefore not block.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancellation handle returned by Clock.AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// callback from firing.
	Stop() bool
}

// Scheduler is an optional Clock extension for fire-and-forget timers:
// ScheduleFunc behaves like AfterFunc but returns no cancellation
// handle, which lets implementations recycle their per-timer bookkeeping
// (VirtualClock pools its heap events). Hot paths that schedule one
// callback per delivered frame — the radio medium above all — probe for
// this interface so a dense broadcast costs zero steady-state
// allocations in the clock.
type Scheduler interface {
	// ScheduleFunc schedules f to run after d on this clock. It cannot
	// be cancelled.
	ScheduleFunc(d time.Duration, f func())
}

// RealClock is a Clock backed by the runtime's wall clock.
// The zero value is ready to use.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (RealClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

// ScheduleFunc implements Scheduler.
func (RealClock) ScheduleFunc(d time.Duration, f func()) {
	time.AfterFunc(d, f)
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

package sim

import (
	"hash/fnv"
	"math/rand/v2"
)

// NewRand returns a deterministic PCG-backed random source for the given
// seed. Every simulated component draws from its own stream (see SubSeed)
// so that adding draws in one component never perturbs another — a
// prerequisite for the paired baseline comparisons in the experiment
// harness.
func NewRand(seed uint64) *rand.Rand {
	// Mix the single seed into the two PCG words with splitmix64-style
	// constants so that nearby seeds yield unrelated streams.
	s1 := (seed ^ 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
	s2 := (seed ^ 0x94D049BB133111EB) * 0xD6E8FEB86659FD93
	return rand.New(rand.NewPCG(s1, s2))
}

// SubSeed derives a child seed from a parent seed and a label, by hashing.
// Use it to give each component (medium, each sensor, each mobility model)
// an independent stream: SubSeed(seed, "radio"), SubSeed(seed, "sensor/42").
func SubSeed(seed uint64, label string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return h.Sum64()
}

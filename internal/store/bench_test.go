package store

import (
	"fmt"
	"testing"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// BenchmarkStoreAppend measures the retention hot path: one delivery
// copied into the stream's ring. Steady state must be 0 allocs/op — slot
// payload buffers are recycled in place, so the tee into the store costs
// one memcpy and no garbage.
func BenchmarkStoreAppend(b *testing.B) {
	for _, payload := range []int{16, 256} {
		b.Run(fmt.Sprintf("payload=%d", payload), func(b *testing.B) {
			s := New(Options{})
			id := wire.MustStreamID(1, 0)
			d := del(id, 0, epoch, make([]byte, payload))
			// Warm the ring and slot buffers to the working-set size.
			for i := 0; i < 2*DefaultMaxMessages; i++ {
				d.Msg.Seq = wire.Seq(i)
				s.Append(d)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Msg.Seq = wire.Seq(i)
				s.Append(d)
			}
		})
	}
}

// BenchmarkStoreReplay measures reading a full retained window back out:
// visit is the borrowed zero-copy path a same-process consumer (the
// dispatch catch-up gate's fetch) can use via RangeFunc; materialize is
// Range with detached payload copies, what the facade hands callers.
func BenchmarkStoreReplay(b *testing.B) {
	const window = 256
	s := New(Options{MaxMessages: window})
	id := wire.MustStreamID(1, 0)
	d := del(id, 0, epoch, make([]byte, 64))
	for i := 0; i < window; i++ {
		d.Msg.Seq = wire.Seq(i)
		s.Append(d)
	}
	b.Run("visit", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			s.RangeFunc(id, 0, ^uint64(0), func(filtering.Delivery) bool { n++; return true })
		}
		if n != b.N*window {
			b.Fatalf("visited %d, want %d", n, b.N*window)
		}
	})
	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := s.Range(id, 0, ^uint64(0)); len(got) != window {
				b.Fatalf("replayed %d, want %d", len(got), window)
			}
		}
	})
}

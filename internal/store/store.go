// Package store implements the Stream Store: sharded, sequence-addressable
// retention for reconstructed stream deliveries.
//
// Garnet distributes live streams; the only history the paper's middleware
// keeps is the Orphanage's backlog for *unclaimed* streams (§4.2). The
// Stream Store generalises that into a first-class retention layer under
// every stream — GSN-style middleware treats retained history as a service
// queried by late and remote clients — so late joiners catch up on claimed
// streams, consumers run range queries over recent history, and future
// gateway/federation layers have a local buffer to replicate from.
//
// # Addressing
//
// The wire format's 16-bit sequence wraps every 65536 messages; retained
// history needs stable addresses. The store assigns every appended delivery
// a 64-bit extended sequence: the wire sequence unwrapped monotonically
// with RFC 1982 serial distances from the highest sequence seen. Extended
// sequences start at 65536 (so 0 always means "not retained") and are
// stamped onto Delivery.StoreSeq, making the retention address visible to
// every downstream consumer.
//
// # Sharding and retention
//
// State partitions into N shards keyed by wire.SensorID.Shard — the same
// Fibonacci partition the Filtering, Dispatching and control-plane
// services use — so a stream's ingest, retention and dispatch state all
// live behind locks that only that sensor's traffic contends on. Each
// stream owns a power-of-two ring of retained deliveries indexed by
// extended sequence (slot = seq mod ring size), grown on demand up to the
// count bound. Retention is bounded per stream by count, payload bytes and
// age; every bound evicts from the oldest end at append time, advancing a
// window low-water mark one slot at a time, so eviction is O(1) amortised
// and the append path allocates nothing at steady state: payload bytes are
// copied into slot-owned buffers that are recycled in place when a slot is
// reused, which also keeps borrowed radio frames zero-copy upstream — the
// store never retains a reference to caller memory.
package store

import (
	"sort"
	"sync"
	"time"
	"unsafe"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/store/archive"
	"github.com/garnet-middleware/garnet/internal/store/codec"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Defaults for Options.
const (
	// DefaultShards matches the filter and dispatcher defaults so a
	// stream's whole path shards on one key.
	DefaultShards = 16
	// DefaultMaxMessages bounds the per-stream retained backlog. It is
	// deliberately larger than the Orphanage's default per-stream
	// capacity (128) so the orphan backlog view never outruns the store
	// that backs it.
	DefaultMaxMessages = 256

	// extBase is the first extended sequence a stream can be assigned.
	// Starting one full wire-sequence space up keeps 0 free to mean
	// "never retained" and makes backwards serial distances (late
	// out-of-order fills) mathematically incapable of underflowing.
	extBase = uint64(wire.SeqCount)

	// minRingSize is the initial ring allocation; rings double as the
	// retained window grows. One slot, not a batch: at a million mostly
	// idle sensors the dominant store cost is the per-stream ring, and a
	// stream that only ever reported once should pay for exactly one
	// retained delivery, not eight.
	minRingSize = 1
)

// Defaults for the cold compressed tier (Options.Codec != "").
const (
	// DefaultColdBudget bounds the compressed cold bytes kept per stream.
	DefaultColdBudget = int64(1) << 16
	// DefaultBlockSize is the number of deliveries sealed per cold block.
	DefaultBlockSize = 64
	// maxFreeBufs bounds the per-shard free list of recycled block
	// buffers.
	maxFreeBufs = 64
)

// Options configures a Store. The zero value selects the defaults above
// with no byte or age bound.
type Options struct {
	// Shards partitions the per-stream retention state; <= 0 selects
	// DefaultShards, 1 a single shared table.
	Shards int
	// MaxMessages bounds retained deliveries per stream; <= 0 selects
	// DefaultMaxMessages. The ring is sized to the next power of two.
	MaxMessages int
	// MaxBytes bounds retained payload bytes per stream; <= 0 means
	// unbounded. The newest delivery is always retained, even when it
	// alone exceeds the bound.
	MaxBytes int64
	// MaxAge evicts deliveries older than this relative to the delivery
	// being appended (append-side eviction needs no timer and stays
	// deterministic on virtual clocks); <= 0 means unbounded.
	MaxAge time.Duration

	// Codec enables the cold compressed tier: deliveries evicted from the
	// hot ring by the count/byte/age bounds are sealed into immutable
	// compressed blocks instead of being dropped, and the read path
	// stitches them back transparently. "" disables the tier (evictions
	// drop, the pre-compression behaviour). Valid names are "auto",
	// "gorilla", "rle", "lz" and "raw"; New panics on anything else, like
	// a malformed shard count would elsewhere — a config typo should not
	// silently disable retention.
	Codec string
	// ColdBudget bounds the compressed cold bytes kept per stream; the
	// oldest blocks are dropped (Stats.EvictedCold) past it. <= 0 selects
	// DefaultColdBudget. The newest block always survives.
	ColdBudget int64
	// BlockSize is the number of deliveries sealed per cold block; <= 0
	// selects DefaultBlockSize.
	BlockSize int

	// Archive enables the durable archive tier: cold blocks the
	// compressed-bytes budget would drop are spilled to this backend
	// instead, and the read path stitches them back transparently —
	// archive → cold → hot, one ascending sequence. Archiving requires
	// the cold tier; when Codec is empty it defaults to "auto". nil
	// disables the tier (budget overruns drop, the pre-archive
	// behaviour). At construction the store recovers the backend's
	// manifest and serves archived history for streams it has never
	// seen live.
	Archive archive.Backend
	// ArchiveSync spills synchronously under the shard lock instead of
	// through the per-shard archiver goroutines: appends pay the
	// backend's write latency, but shutdown needs no drain and tests
	// are deterministic.
	ArchiveSync bool
	// ArchiveQueue bounds each shard's async spill queue; <= 0 selects
	// DefaultArchiveQueue. A full queue falls back to a synchronous
	// drain (counted in Stats.ArchiveSyncSpills) — backpressure slows
	// appenders, it never drops history.
	ArchiveQueue int
	// ArchiveMaxAge drops archived blocks whose newest entry is older
	// than this relative to the newest archived entry (append-side
	// eviction, deterministic on virtual clocks); <= 0 means unbounded.
	ArchiveMaxAge time.Duration
	// ArchiveMaxBytes bounds the archived compressed bytes per stream;
	// the oldest blocks are dropped (Stats.EvictedArchive) past it.
	// <= 0 means unbounded. The newest block always survives.
	ArchiveMaxBytes int64
}

// Stats is an aggregate snapshot summed across shards. The counters obey
//
//	RetainedMessages + ArchivedMessages − ArchiveRecovered ==
//	    Appended − Duplicates − DroppedBehind −
//	    EvictedCount − EvictedBytes − EvictedAge − EvictedCold −
//	    EvictedArchive − ArchiveFailed − Forgotten
//
// on every snapshot: each appended delivery is either still held (in
// memory or durably archived) or accounted to exactly one of the loss
// reasons; ArchiveRecovered discounts history inherited from a previous
// process's manifest, which was never appended in this one. With
// compression enabled the Evicted{Count,Bytes,Age} counters stay at
// zero — those evictions seal into the cold tier instead — and
// EvictedCold takes over as the only capacity-driven loss; with an
// archive backend attached EvictedCold stays at zero too — budget
// overruns spill — leaving EvictedArchive (retention policy) and
// ArchiveFailed (backend write errors) as the only capacity losses.
type Stats struct {
	Appended      int64 // deliveries handed to Append
	Duplicates    int64 // re-appends of an already retained sequence (replaced in place)
	DroppedBehind int64 // arrived below the retained window; address assigned, not stored
	EvictedCount  int64 // evicted by the count/ring bound
	EvictedBytes  int64 // evicted by the byte bound
	EvictedAge    int64 // evicted by the age bound
	EvictedCold   int64 // dropped from the cold tier by the compressed-bytes budget
	Forgotten     int64 // dropped by policy (Forget / EvictTo)

	// Cold-tier counters, zero when compression is off.
	SealedBlocks   int64 // compressed blocks sealed since start
	SealedMessages int64 // deliveries sealed into those blocks

	// RetainedMessages/RetainedBytes are gauge values: what the store
	// holds right now — hot ring, seal stage and cold tier — summed
	// across the per-shard gauges. RetainedBytes counts payload bytes as
	// appended, regardless of how densely the cold tier stores them.
	RetainedMessages int64
	RetainedBytes    int64

	// Cold-tier gauges: compressed blocks currently held, the compressed
	// bytes they occupy, and the raw payload bytes they represent.
	ColdBlocks   int
	ColdBytes    int64
	ColdRawBytes int64

	// Archive-tier counters, zero when no backend is attached.
	EvictedArchive      int64 // dropped from the archive by WithArchiveRetention bounds
	ArchiveFailed       int64 // lost to backend append errors
	ArchiveRecovered    int64 // recovered from the backend's manifest at construction
	ArchiveSyncSpills   int64 // blocks spilled synchronously by the queue-full fallback
	ArchiveReadMessages int64 // entries decoded from archived blocks by reads (read amplification numerator)

	// Archive-tier gauges: durable blocks live right now, their
	// encoded/raw bytes (RawBytes/Bytes is the archived compression
	// ratio), blocks spilled but not yet committed by the archiver
	// (their entries still count as retained), and the spill-queue
	// occupancy across shards.
	ArchivedBlocks       int64
	ArchivedMessages     int64
	ArchivedBytes        int64
	ArchivedRawBytes     int64
	ArchivePendingBlocks int64
	ArchiveQueueDepth    int

	// Archive backend latency percentiles in milliseconds (exact order
	// statistics over every spill write / block read so far); zero when
	// nothing has been observed.
	ArchiveWriteP50Ms float64
	ArchiveWriteP99Ms float64
	ArchiveReadP50Ms  float64
	ArchiveReadP99Ms  float64

	Codec   string // configured codec name, "" when compression is off
	Streams int    // streams currently holding at least one delivery
	Shards  int
}

// StreamStats describes one stream's retained window across every tier.
type StreamStats struct {
	Stream   wire.StreamID
	FirstSeq uint64 // lowest retained extended sequence (0 when empty)
	LastSeq  uint64 // highest retained extended sequence (0 when empty)
	NextWire wire.Seq
	Count    int   // retained deliveries: hot + stage + cold
	Bytes    int64 // their payload bytes as appended

	// ResidentBytes estimates the stream's resident heap: the ring
	// header, the hot slot array and stage backing at capacity, retained
	// payload bytes, and the sealed blocks' headers plus compressed
	// data. Receiver strings are interned process-wide and payload
	// backing is counted at appended length, so this is an estimate —
	// but one built from the same quantities the evictors charge, which
	// makes it comparable across streams and honest about lazy
	// allocation (a forgotten or idle stream shows only its header).
	ResidentBytes int64

	// Cold-tier view, zero when compression is off or nothing has been
	// sealed yet. ColdRawBytes/ColdBytes is the stream's compression
	// ratio.
	Codec        string // codec of the newest sealed block
	ColdBlocks   int
	ColdMessages int
	ColdBytes    int64 // compressed bytes held
	ColdRawBytes int64 // payload bytes those blocks represent

	// Archive-tier view, zero when no backend is attached or nothing
	// has spilled. Archived entries are durable, not resident: they are
	// excluded from Count/Bytes/ResidentBytes but included in the
	// FirstSeq..LastSeq replayable window. ArchivedRawBytes divided by
	// ArchivedBytes is the stream's archived compression ratio.
	ArchivedBlocks   int
	ArchivedMessages int
	ArchivedBytes    int64 // encoded bytes in the backend
	ArchivedRawBytes int64 // payload bytes those blocks represent
	ArchivePending   int   // spilled blocks not yet committed by the archiver
	ArchiveFloor     uint64
}

// Store is the Stream Store.
type Store struct {
	opts     Options
	ringMax  int
	shards   []*shard
	shardCnt int

	// Cold-tier configuration; picker is nil when compression is off.
	picker     codec.Picker
	codecName  string
	coldBudget int64
	blockSize  int

	// Archive tier; nil when no backend is attached.
	arch *archiveState
}

type shard struct {
	mu      sync.Mutex
	streams map[wire.StreamID]*ring
	idx     int

	// Single-entry lookup cache, same trick as the filter: sensors emit
	// runs on one stream, so the common append skips the map hash.
	lastID wire.StreamID
	last   *ring

	// Hot-path counters are plain ints under mu; retained totals are
	// gauges so dashboards can read them without taking shard locks.
	appended      int64
	duplicates    int64
	droppedBehind int64
	evictedCount  int64
	evictedBytes  int64
	evictedAge    int64
	evictedCold   int64
	forgotten     int64
	sealedBlocks  int64
	sealedMsgs    int64

	retainedMessages metrics.Gauge
	retainedBytes    metrics.Gauge

	// Archive tier: per-stream archived state (nil map when the tier is
	// off) and its counters, plain ints under mu like the rest.
	archived         map[wire.StreamID]*archStream
	archivedBlocks   int64
	archivedMsgs     int64
	archivedBytes    int64
	archivedRaw      int64
	pendingBlocks    int64
	evictedArchive   int64
	archiveFailed    int64
	spillSync        int64
	archiveRecovered int64
	archiveReadMsgs  int64

	// freeBufs recycles encoded-block buffers across streams so sealing
	// allocates nothing at steady state.
	freeBufs [][]byte
}

// paddedShard rounds a shard up to whole cache lines, keeping at least
// 8 bytes of trailing padding, so live fields of adjacent shards in the
// contiguous backing array never share a line even when the runtime's
// 8-byte allocation header shifts the array base off line alignment
// (see the dispatch package's paddedShard for the full rationale).
type paddedShard struct {
	shard
	_ [(unsafe.Sizeof(shard{})+metrics.CacheLine+7)/metrics.CacheLine*metrics.CacheLine - unsafe.Sizeof(shard{})]byte
}

// blockBufLocked pops a recycled block buffer. Caller holds mu.
func (sh *shard) blockBufLocked() []byte {
	if n := len(sh.freeBufs); n > 0 {
		b := sh.freeBufs[n-1]
		sh.freeBufs[n-1] = nil
		sh.freeBufs = sh.freeBufs[:n-1]
		return b
	}
	return nil
}

// recycleBufLocked parks a block buffer for reuse. Caller holds mu.
func (sh *shard) recycleBufLocked(b []byte) {
	if b != nil && len(sh.freeBufs) < maxFreeBufs {
		sh.freeBufs = append(sh.freeBufs, b[:0])
	}
}

// ring is one stream's retention state: a power-of-two circular buffer of
// deliveries indexed by extended sequence, plus the unwrap state that
// survives even when every entry has been evicted.
//
// There is one ring per stream the store has ever seen, so its layout is
// the store's idle footprint: the slot mask is derived from len(slots)
// (see slotMask) instead of stored, the counts are int32 (both are
// bounded by ring/budget sizes far below 2³¹), and the narrow fields sit
// together at the tail — 144 bytes, one whole size class below the naive
// 160-byte layout. The footprint test pins the ceiling.
type ring struct {
	slots []filtering.Delivery

	// Retained window [minExt, maxExt], both present when count > 0.
	// Entries inside the window may be holes (sequence gaps the radio
	// lost); a slot is occupied iff its StoreSeq matches the probed
	// extended sequence and lies inside the window.
	minExt, maxExt uint64
	bytes          int64

	// lastExt is the highest extended sequence ever assigned (unwrap
	// state, with lastWire below). Kept across Forget so a stream's
	// addresses never move backwards.
	lastExt uint64

	// Cold tier (compression enabled). Entries leave the hot ring oldest
	// first into stage — a fixed-capacity slice whose spare elements park
	// recycled payload buffers — and a full stage seals into one
	// immutable compressed block appended to cold. All sequences in cold
	// precede all in stage precede all in the hot ring, so reads stitch
	// the three in order. stage and cold entries are still retained: the
	// shard gauges do not move when an entry is sealed, only when a block
	// is dropped.
	stage      []filtering.Delivery
	stageBytes int64
	cold       []coldBlock
	coldBytes  int64 // compressed bytes across cold
	coldRaw    int64 // payload bytes those blocks represent

	count     int32 // occupied hot slots
	coldCount int32 // deliveries across cold
	// lastWire is the wire sequence of lastExt (unwrap state).
	lastWire wire.Seq
}

// slotMask converts an extended sequence into a slot index; len(slots)
// is a power of two. Deriving the mask from the length the indexing
// already loads keeps it off every ring's footprint. Caller must know
// slots is non-empty (count > 0, or appendLocked after re-materialise).
func (r *ring) slotMask() uint64 { return uint64(len(r.slots)) - 1 }

// coldBlock is one immutable compressed span of sealed deliveries.
type coldBlock struct {
	codec    codec.ID
	firstSeq uint64
	lastSeq  uint64
	count    int
	rawBytes int64 // payload bytes sealed inside
	lastUnix int64 // At of the newest entry, unix nanos (archive age retention)
	data     []byte
}

// New creates a Store. It panics when Options.Codec names an unknown
// codec or when the archive backend's manifest cannot be recovered — a
// deployment must not come up silently blind to its own history.
func New(opts Options) *Store {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.MaxMessages <= 0 {
		opts.MaxMessages = DefaultMaxMessages
	}
	if opts.Archive != nil && opts.Codec == "" {
		// The archive files sealed compressed blocks; attaching a
		// backend implies the cold tier.
		opts.Codec = "auto"
	}
	s := &Store{
		opts:     opts,
		ringMax:  ceilPow2(opts.MaxMessages),
		shardCnt: opts.Shards,
	}
	if opts.Codec != "" {
		picker, err := codec.PickerFor(opts.Codec)
		if err != nil {
			panic("store: " + err.Error())
		}
		s.picker = picker
		s.codecName = opts.Codec
		s.coldBudget = opts.ColdBudget
		if s.coldBudget <= 0 {
			s.coldBudget = DefaultColdBudget
		}
		s.blockSize = opts.BlockSize
		if s.blockSize <= 0 {
			s.blockSize = DefaultBlockSize
		}
	}
	// One contiguous padded backing array: a multiple-of-64 allocation is
	// 64-aligned by the Go size classes, so every shard starts on a cache
	// line boundary.
	backing := make([]paddedShard, opts.Shards)
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		sh := &backing[i].shard
		sh.streams = make(map[wire.StreamID]*ring)
		sh.idx = i
		s.shards[i] = sh
	}
	if opts.Archive != nil {
		s.initArchive(opts)
	}
	return s
}

// ceilPow2 rounds n up to a power of two ≥ minRingSize.
func ceilPow2(n int) int {
	p := minRingSize
	for p < n {
		p <<= 1
	}
	return p
}

func (s *Store) shardFor(id wire.StreamID) *shard {
	return s.shards[id.Sensor().Shard(s.shardCnt)]
}

func (sh *shard) lookupSlowLocked(id wire.StreamID) *ring {
	r, ok := sh.streams[id]
	if !ok {
		r = &ring{slots: make([]filtering.Delivery, minRingSize)}
		sh.streams[id] = r
	}
	sh.lastID, sh.last = id, r
	return r
}

// presentLocked reports whether ext is occupied in r.
func (r *ring) presentLocked(ext uint64) bool {
	return r.count > 0 && ext >= r.minExt && ext <= r.maxExt &&
		r.slots[ext&r.slotMask()].StoreSeq == ext
}

// Append retains one delivery and returns its extended sequence. The
// payload is copied into store-owned memory; d and its payload may be
// reused by the caller immediately. Deliveries whose extended sequence
// falls below the stream's retained window (late out-of-order fills racing
// eviction) are assigned their address but not stored.
func (s *Store) Append(d filtering.Delivery) uint64 {
	sh := s.shardFor(d.Msg.Stream)
	sh.mu.Lock()
	ext := s.appendLocked(sh, d)
	sh.mu.Unlock()
	return ext
}

// AppendBatch retains a run of deliveries and stamps each delivery's
// StoreSeq in place, taking each home shard's mutex once per
// consecutive same-shard run instead of once per delivery. Unwrap,
// window advance, seal and eviction decisions are identical to len(ds)
// serial Append calls (both paths run appendLocked). Payloads are
// copied into store-owned memory as always; the caller may reuse ds
// and its payloads immediately.
func (s *Store) AppendBatch(ds []filtering.Delivery) {
	for i := 0; i < len(ds); {
		sh := s.shardFor(ds[i].Msg.Stream)
		j := i + 1
		for j < len(ds) && s.shardFor(ds[j].Msg.Stream) == sh {
			j++
		}
		sh.mu.Lock()
		for k := i; k < j; k++ {
			ds[k].StoreSeq = s.appendLocked(sh, ds[k])
		}
		sh.mu.Unlock()
		i = j
	}
}

// appendLocked is the per-delivery retention step shared by Append and
// AppendBatch. Caller holds sh.mu.
func (s *Store) appendLocked(sh *shard, d filtering.Delivery) uint64 {
	sh.appended++
	r := sh.last
	if r == nil || sh.lastID != d.Msg.Stream {
		r = sh.lookupSlowLocked(d.Msg.Stream)
	}
	if r.slots == nil {
		// Forget released the ring's backing; the stream resumed.
		r.slots = make([]filtering.Delivery, minRingSize)
	}

	// Unwrap the 16-bit wire sequence into the 64-bit address space. A
	// stream first seen through recovered archived history resumes
	// addressing where that history ends: the unwrap construction keeps
	// ext ≡ wire seq (mod 2¹⁶), so the archived last sequence is also
	// valid unwrap state and the live stream continues the same
	// monotone address space its archive uses.
	var ext uint64
	if r.lastExt == 0 && sh.archived != nil {
		if as := sh.archived[d.Msg.Stream]; as != nil {
			if last := as.lastSeqLocked(); last > 0 {
				r.lastExt, r.lastWire = last, wire.Seq(last)
			}
		}
	}
	if r.lastExt == 0 {
		ext = extBase + uint64(d.Msg.Seq)
	} else {
		ext = uint64(int64(r.lastExt) + int64(r.lastWire.Distance(d.Msg.Seq)))
	}
	if ext > r.lastExt {
		r.lastExt, r.lastWire = ext, d.Msg.Seq
	}

	if r.count > 0 && ext < r.minExt {
		sh.droppedBehind++
		return ext
	}

	if r.count == 0 {
		// With the in-memory window empty the archive tier is the
		// window: addresses at or below its end arrived behind it.
		if sh.archived != nil {
			if as := sh.archived[d.Msg.Stream]; as != nil && ext <= as.lastSeqLocked() {
				sh.droppedBehind++
				return ext
			}
		}
		r.minExt, r.maxExt = ext, ext
	} else if ext > r.maxExt {
		// Advancing the window high end may push old entries out of the
		// ring span; grow the ring first while the count bound allows,
		// then evict whatever still falls below the new span.
		for ext-r.minExt >= uint64(len(r.slots)) && len(r.slots) < s.ringMax {
			r.growLocked(sh)
		}
		if span := uint64(len(r.slots)); ext-r.minExt >= span {
			target := ext - span + 1
			for r.count > 0 && r.oldestLocked() < target {
				s.retireLowestLocked(sh, r, d.Msg.Stream, &sh.evictedCount)
			}
			if r.count > 0 && r.minExt < target {
				r.minExt = target
			}
		}
		if r.count == 0 {
			r.minExt = ext
		}
		r.maxExt = ext
	}
	// ext ≤ maxExt and ≥ minExt here when filling a gap.

	slot := &r.slots[ext&r.slotMask()]
	if slot.StoreSeq == ext && r.presentLocked(ext) {
		// Duplicate append of a retained sequence (the filter screens
		// these out upstream; be idempotent anyway): replace in place,
		// and credit Duplicates so Appended − losses still reconciles
		// with the retained gauge.
		sh.duplicates++
		r.bytes -= int64(len(slot.Msg.Payload))
		sh.retainedBytes.Add(-int64(len(slot.Msg.Payload)))
		r.count--
		sh.retainedMessages.Add(-1)
	}
	buf := slot.Msg.Payload
	*slot = d
	slot.Msg.Payload = append(buf[:0], d.Msg.Payload...)
	slot.StoreSeq = ext
	r.count++
	r.bytes += int64(len(slot.Msg.Payload))
	sh.retainedMessages.Add(1)
	sh.retainedBytes.Add(int64(len(slot.Msg.Payload)))

	// Retention bounds, oldest-first. The newest entry always survives.
	// With compression enabled these retirements seal into the cold tier
	// instead of dropping, so the hot bounds govern only the uncompressed
	// working set.
	for int(r.count) > s.opts.MaxMessages {
		s.retireLowestLocked(sh, r, d.Msg.Stream, &sh.evictedCount)
	}
	if s.opts.MaxBytes > 0 {
		for r.bytes > s.opts.MaxBytes && r.count > 1 {
			s.retireLowestLocked(sh, r, d.Msg.Stream, &sh.evictedBytes)
		}
	}
	if s.opts.MaxAge > 0 {
		cutoff := d.At.Add(-s.opts.MaxAge)
		for r.count > 1 {
			old := &r.slots[r.oldestLocked()&r.slotMask()]
			if !old.At.Before(cutoff) {
				break
			}
			s.retireLowestLocked(sh, r, d.Msg.Stream, &sh.evictedAge)
		}
	}
	return ext
}

// growLocked doubles the ring and re-homes retained entries (extended
// sequences are stable; only the slot mapping changes). Caller holds mu.
func (r *ring) growLocked(sh *shard) {
	old := r.slots
	oldMask := uint64(len(old)) - 1
	r.slots = make([]filtering.Delivery, len(old)*2)
	if r.count == 0 {
		return
	}
	for ext := r.minExt; ext <= r.maxExt; ext++ {
		if e := old[ext&oldMask]; e.StoreSeq == ext {
			r.slots[ext&r.slotMask()] = e
		}
	}
}

// oldestLocked returns the lowest occupied extended sequence. It never
// mutates the window: minExt moves only on eviction, so read queries can
// never change a later append's behind-window decision. Caller holds mu;
// r.count must be > 0.
func (r *ring) oldestLocked() uint64 {
	ext := r.minExt
	for !r.presentLocked(ext) {
		ext++
	}
	return ext
}

// retireLowestLocked removes the oldest entry from the hot ring: with
// compression off it is evicted outright and credited to *reason; with
// compression on it is sealed into the cold tier and stays retained, so
// no eviction counter moves. Caller holds mu.
func (s *Store) retireLowestLocked(sh *shard, r *ring, id wire.StreamID, reason *int64) {
	if s.picker == nil {
		sh.dropLowestLocked(r, reason)
		return
	}
	s.sealLowestLocked(sh, r, id)
}

// dropLowestLocked removes the oldest retained hot entry, crediting the
// eviction to *reason. The slot keeps its payload buffer for reuse; only
// the occupancy marker and accounting change. Caller holds mu.
func (sh *shard) dropLowestLocked(r *ring, reason *int64) {
	ext := r.oldestLocked()
	slot := &r.slots[ext&r.slotMask()]
	r.bytes -= int64(len(slot.Msg.Payload))
	sh.retainedBytes.Add(-int64(len(slot.Msg.Payload)))
	slot.StoreSeq = 0
	slot.Msg.Payload = slot.Msg.Payload[:0]
	r.count--
	sh.retainedMessages.Add(-1)
	*reason++
	r.minExt = ext + 1
	if r.count == 0 {
		r.minExt, r.maxExt = 0, 0
	}
}

// sealLowestLocked moves the oldest hot entry into the seal stage,
// swapping the slot's payload buffer with the buffer parked in the spare
// stage element so neither side allocates. A full stage seals into one
// compressed block. The entry stays retained throughout — the shard
// gauges do not move. Caller holds mu.
func (s *Store) sealLowestLocked(sh *shard, r *ring, id wire.StreamID) {
	if r.stage == nil {
		r.stage = make([]filtering.Delivery, 0, s.blockSize)
	}
	ext := r.oldestLocked()
	slot := &r.slots[ext&r.slotMask()]
	n := len(r.stage)
	r.stage = r.stage[:n+1]
	st := &r.stage[n]
	parked := st.Msg.Payload
	*st = *slot
	r.stageBytes += int64(len(st.Msg.Payload))
	r.bytes -= int64(len(slot.Msg.Payload))
	slot.StoreSeq = 0
	slot.Msg.Payload = parked[:0]
	r.count--
	r.minExt = ext + 1
	if r.count == 0 {
		r.minExt, r.maxExt = 0, 0
	}
	if len(r.stage) == cap(r.stage) {
		s.sealStageLocked(sh, r, id)
	}
}

// sealStageLocked encodes the staged entries into one immutable cold
// block (into a recycled buffer when one is parked) and enforces the
// per-stream compressed-bytes budget. Caller holds mu.
func (s *Store) sealStageLocked(sh *shard, r *ring, id wire.StreamID) {
	if len(r.stage) == 0 {
		return
	}
	c := s.picker(r.stage)
	data := c.Encode(sh.blockBufLocked(), r.stage)
	b := coldBlock{
		codec:    c.ID(),
		firstSeq: r.stage[0].StoreSeq,
		lastSeq:  r.stage[len(r.stage)-1].StoreSeq,
		count:    len(r.stage),
		rawBytes: r.stageBytes,
		lastUnix: r.stage[len(r.stage)-1].At.UnixNano(),
		data:     data,
	}
	r.cold = append(r.cold, b)
	r.coldBytes += int64(len(data))
	r.coldRaw += b.rawBytes
	r.coldCount += int32(b.count)
	sh.sealedBlocks++
	sh.sealedMsgs += int64(b.count)
	r.stage = r.stage[:0] // spare elements keep their payload buffers
	r.stageBytes = 0
	for len(r.cold) > 1 && r.coldBytes > s.coldBudget {
		if s.arch != nil {
			s.spillOldestColdLocked(sh, r, id)
		} else {
			sh.dropOldestColdLocked(r, &sh.evictedCold)
		}
	}
}

// dropOldestColdLocked drops the oldest cold block, crediting its entries
// to *reason and recycling its buffer. Caller holds mu.
func (sh *shard) dropOldestColdLocked(r *ring, reason *int64) {
	b := &r.cold[0]
	r.coldBytes -= int64(len(b.data))
	r.coldRaw -= b.rawBytes
	r.coldCount -= int32(b.count)
	sh.retainedMessages.Add(-int64(b.count))
	sh.retainedBytes.Add(-b.rawBytes)
	*reason += int64(b.count)
	sh.recycleBufLocked(b.data)
	n := len(r.cold)
	copy(r.cold, r.cold[1:])
	r.cold[n-1] = coldBlock{}
	r.cold = r.cold[:n-1]
}

// evictAllLocked empties every tier of the ring, crediting *reason per
// entry. Caller holds mu.
func (sh *shard) evictAllLocked(r *ring, reason *int64) {
	for len(r.cold) > 0 {
		sh.dropOldestColdLocked(r, reason)
	}
	sh.dropStagePrefixLocked(r, len(r.stage), reason)
	for r.count > 0 {
		sh.dropLowestLocked(r, reason)
	}
}

// dropStagePrefixLocked drops the first k staged entries, crediting
// *reason per entry. Survivors shift down by swapping, so the dropped
// elements' payload buffers stay parked in the spare capacity for reuse.
// Caller holds mu.
func (sh *shard) dropStagePrefixLocked(r *ring, k int, reason *int64) {
	if k <= 0 {
		return
	}
	n := len(r.stage)
	var freed int64
	for i := 0; i < k; i++ {
		freed += int64(len(r.stage[i].Msg.Payload))
	}
	r.stageBytes -= freed
	sh.retainedMessages.Add(-int64(k))
	sh.retainedBytes.Add(-freed)
	*reason += int64(k)
	for i := k; i < n; i++ {
		r.stage[i-k], r.stage[i] = r.stage[i], r.stage[i-k]
	}
	r.stage = r.stage[:n-k]
}

// LastSeq returns the highest extended sequence ever assigned on the
// stream (retained or not); ok is false when the store has never seen it.
// A stream known only through recovered archived history answers from
// the archive's end.
func (s *Store) LastSeq(id wire.StreamID) (uint64, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.streams[id]
	if !ok || r.lastExt == 0 {
		if sh.archived != nil {
			if as := sh.archived[id]; as != nil {
				if last := as.lastSeqLocked(); last > 0 {
					return last, true
				}
			}
		}
		return 0, false
	}
	return r.lastExt, true
}

// FirstSeq returns the lowest retained extended sequence — in the
// archive when blocks were spilled, the cold tier when blocks are
// sealed, else the hot window — ok is false when nothing is retained.
func (s *Store) FirstSeq(id wire.StreamID) (uint64, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.archived != nil {
		if as := sh.archived[id]; as != nil {
			switch {
			case len(as.refs) > 0:
				return as.refs[0].FirstSeq, true
			case len(as.pending) > 0:
				return as.pending[0].firstSeq, true
			}
		}
	}
	r, ok := sh.streams[id]
	if !ok {
		return 0, false
	}
	switch {
	case len(r.cold) > 0:
		return r.cold[0].firstSeq, true
	case len(r.stage) > 0:
		return r.stage[0].StoreSeq, true
	case r.count > 0:
		return r.oldestLocked(), true
	}
	return 0, false
}

// OldestSince returns the extended sequence and payload size of the first
// retained entry at or after from, in any tier.
func (s *Store) OldestSince(id wire.StreamID, from uint64) (seq uint64, size int, ok bool) {
	s.RangeFunc(id, from, ^uint64(0), func(d filtering.Delivery) bool {
		seq, size, ok = d.StoreSeq, len(d.Msg.Payload), true
		return false
	})
	return seq, size, ok
}

// decodeScratch is the pooled working memory for lazily decompressing one
// cold block on the read path.
type decodeScratch struct {
	sc      codec.Scratch
	entries []filtering.Delivery
	buf     []byte // archive block read buffer
}

var decodePool = sync.Pool{New: func() any { return new(decodeScratch) }}

// visitColdLocked decodes one cold block and visits its entries within
// [from, to], returning false when fn stopped the walk. Decoded
// deliveries borrow pooled scratch memory, valid only during fn — the
// same borrow contract RangeFunc already imposes. A block that fails to
// decode (which would take memory corruption — the store sealed it) is
// skipped rather than taking the read path down. Caller holds mu.
func visitColdLocked(b *coldBlock, id wire.StreamID, from, to uint64, fn func(d filtering.Delivery) bool) bool {
	c, ok := codec.ByID(b.codec)
	if !ok {
		return true
	}
	ds := decodePool.Get().(*decodeScratch)
	entries, err := c.Decode(ds.entries[:0], id, b.data, &ds.sc)
	ds.entries = entries
	cont := true
	if err == nil {
		for i := range entries {
			if entries[i].StoreSeq < from {
				continue
			}
			if entries[i].StoreSeq > to {
				break
			}
			if !fn(entries[i]) {
				cont = false
				break
			}
		}
	}
	decodePool.Put(ds)
	return cont
}

// visitWarmLocked visits the stage and hot-ring entries within [from, to]
// ascending, returning false when fn stopped the walk. Caller holds mu.
func (r *ring) visitWarmLocked(from, to uint64, fn func(d filtering.Delivery) bool) bool {
	for i := range r.stage {
		seq := r.stage[i].StoreSeq
		if seq < from {
			continue
		}
		if seq > to {
			return true
		}
		if !fn(r.stage[i]) {
			return false
		}
	}
	if r.count == 0 {
		return true
	}
	lo, hi := from, to
	if low := r.oldestLocked(); lo < low {
		lo = low
	}
	if hi > r.maxExt {
		hi = r.maxExt
	}
	for ext := lo; ext <= hi; ext++ {
		if r.presentLocked(ext) && !fn(r.slots[ext&r.slotMask()]) {
			return false
		}
	}
	return true
}

// Range returns copies of the retained deliveries with extended sequences
// in [from, to], ascending. Payloads are detached copies; the result is
// safe to hold indefinitely.
func (s *Store) Range(id wire.StreamID, from, to uint64) []filtering.Delivery {
	return s.AppendRange(nil, id, from, to)
}

// AppendRange is Range appending into dst (payloads still freshly copied),
// for callers that recycle the outer slice across replays.
func (s *Store) AppendRange(dst []filtering.Delivery, id wire.StreamID, from, to uint64) []filtering.Delivery {
	s.RangeFunc(id, from, to, func(d filtering.Delivery) bool {
		d.Msg.Payload = append([]byte(nil), d.Msg.Payload...)
		dst = append(dst, d)
		return true
	})
	return dst
}

// RangeFunc visits retained deliveries with extended sequences in
// [from, to] ascending, stopping early when fn returns false. Cold
// compressed blocks are stitched in transparently, decompressed lazily
// into pooled scratch one block at a time. The visited deliveries borrow
// store memory: they are valid only during the fn call, which runs under
// the stream's shard lock — fn must not call back into the Store and
// must copy anything it keeps.
func (s *Store) RangeFunc(id wire.StreamID, from, to uint64, fn func(d filtering.Delivery) bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.archived != nil {
		if as := sh.archived[id]; as != nil {
			if !s.visitArchiveLocked(sh, as, id, from, to, fn) {
				return
			}
		}
	}
	r, ok := sh.streams[id]
	if !ok {
		return
	}
	for bi := range r.cold {
		b := &r.cold[bi]
		if b.lastSeq < from {
			continue
		}
		if b.firstSeq > to {
			return
		}
		if !visitColdLocked(b, id, from, to, fn) {
			return
		}
	}
	r.visitWarmLocked(from, to, fn)
}

// WindowStats returns the number of retained deliveries and their total
// payload bytes with extended sequences in [from, to] — what a replay of
// that window would materialise. Policy views (the Orphanage) report
// their backlog from this truth so byte/age eviction inside a window can
// never make the view overstate what a claim will return. Cold blocks
// wholly inside the window are summed from their headers without
// decompressing; only the boundary blocks decode.
func (s *Store) WindowStats(id wire.StreamID, from, to uint64) (count int, bytes int64) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	acc := func(d filtering.Delivery) bool {
		count++
		bytes += int64(len(d.Msg.Payload))
		return true
	}
	if sh.archived != nil {
		if as := sh.archived[id]; as != nil {
			for i := range as.refs {
				ref := &as.refs[i]
				if ref.LastSeq < from {
					continue
				}
				if ref.FirstSeq > to {
					return count, bytes
				}
				if ref.FirstSeq >= from && ref.LastSeq <= to {
					count += int(ref.Count)
					bytes += ref.RawBytes
					continue
				}
				s.visitArchivedBlockLocked(sh, id, ref, from, to, acc)
			}
			for bi := range as.pending {
				b := &as.pending[bi]
				if b.lastSeq < from {
					continue
				}
				if b.firstSeq > to {
					return count, bytes
				}
				if b.firstSeq >= from && b.lastSeq <= to {
					count += b.count
					bytes += b.rawBytes
					continue
				}
				// A retention cut may leave dead prefix entries inside
				// the block's physical bytes; the live firstSeq bounds
				// what the decode may surface.
				lo := from
				if b.firstSeq > lo {
					lo = b.firstSeq
				}
				visitColdLocked(b, id, lo, to, acc)
			}
		}
	}
	r, ok := sh.streams[id]
	if !ok {
		return count, bytes
	}
	for bi := range r.cold {
		b := &r.cold[bi]
		if b.lastSeq < from {
			continue
		}
		if b.firstSeq > to {
			return count, bytes
		}
		if b.firstSeq >= from && b.lastSeq <= to {
			count += b.count
			bytes += b.rawBytes
			continue
		}
		visitColdLocked(b, id, from, to, acc)
	}
	r.visitWarmLocked(from, to, acc)
	return count, bytes
}

// Latest returns a copy of the newest retained delivery on the stream.
func (s *Store) Latest(id wire.StreamID) (filtering.Delivery, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.streams[id]
	if !ok || r.count == 0 {
		return filtering.Delivery{}, false
	}
	d := r.slots[r.maxExt&r.slotMask()]
	d.Msg.Payload = append([]byte(nil), d.Msg.Payload...)
	return d, true
}

// Since returns copies of the retained deliveries received at or after t,
// ascending by extended sequence.
func (s *Store) Since(id wire.StreamID, t time.Time) []filtering.Delivery {
	var out []filtering.Delivery
	s.RangeFunc(id, 0, ^uint64(0), func(d filtering.Delivery) bool {
		if !d.At.Before(t) {
			d.Msg.Payload = append([]byte(nil), d.Msg.Payload...)
			out = append(out, d)
		}
		return true
	})
	return out
}

// Snapshot returns the last retained value of every stream matched by
// pred (nil matches all), sorted by stream id — the materialised-view
// query a dashboard or gateway uses to prime its own state.
func (s *Store) Snapshot(pred func(wire.StreamID) bool) []filtering.Delivery {
	var out []filtering.Delivery
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, r := range sh.streams {
			if r.count == 0 || (pred != nil && !pred(id)) {
				continue
			}
			d := r.slots[r.maxExt&r.slotMask()]
			d.Msg.Payload = append([]byte(nil), d.Msg.Payload...)
			out = append(out, d)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Msg.Stream < out[j].Msg.Stream })
	return out
}

// EvictTo drops retained deliveries with extended sequences below upto,
// returning how many were dropped (credited to Stats.Forgotten). Policy
// layers — the Orphanage advancing its backlog window — call this. Cold
// blocks wholly below upto are dropped by header; a block straddling the
// boundary is split: its survivors are re-encoded into a fresh block so
// the tier stays immutable and exactly accounted.
func (s *Store) EvictTo(id wire.StreamID, upto uint64) int {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	before := sh.forgotten
	if sh.archived != nil {
		if as := sh.archived[id]; as != nil {
			s.evictArchiveToLocked(sh, as, id, upto, &sh.forgotten)
		}
	}
	r, ok := sh.streams[id]
	if !ok {
		return int(sh.forgotten - before)
	}
	for len(r.cold) > 0 && r.cold[0].lastSeq < upto {
		sh.dropOldestColdLocked(r, &sh.forgotten)
	}
	if len(r.cold) > 0 && r.cold[0].firstSeq < upto {
		s.splitColdBlockLocked(sh, r, upto)
	}
	k := 0
	for k < len(r.stage) && r.stage[k].StoreSeq < upto {
		k++
	}
	sh.dropStagePrefixLocked(r, k, &sh.forgotten)
	for r.count > 0 && r.oldestLocked() < upto {
		sh.dropLowestLocked(r, &sh.forgotten)
	}
	return int(sh.forgotten - before)
}

// splitColdBlockLocked rewrites the oldest cold block to keep only the
// entries at or above upto: decode, re-encode the survivors (the encoder
// reads from decode scratch, so it can write straight into the old
// buffer), credit the dropped prefix to Forgotten. Caller holds mu.
func (s *Store) splitColdBlockLocked(sh *shard, r *ring, upto uint64) {
	b := &r.cold[0]
	c, ok := codec.ByID(b.codec)
	if !ok {
		return
	}
	ds := decodePool.Get().(*decodeScratch)
	entries, err := c.Decode(ds.entries[:0], 0, b.data, &ds.sc)
	ds.entries = entries
	if err != nil {
		decodePool.Put(ds)
		return
	}
	keep := 0
	for keep < len(entries) && entries[keep].StoreSeq < upto {
		keep++
	}
	survivors := entries[keep:]
	dropped := keep
	var droppedRaw int64
	for i := 0; i < keep; i++ {
		droppedRaw += int64(len(entries[i].Msg.Payload))
	}
	if len(survivors) == 0 {
		decodePool.Put(ds)
		sh.dropOldestColdLocked(r, &sh.forgotten)
		return
	}
	oldLen := int64(len(b.data))
	nc := s.picker(survivors)
	b.data = nc.Encode(b.data[:0], survivors)
	b.codec = nc.ID()
	b.firstSeq = survivors[0].StoreSeq
	b.count = len(survivors)
	b.rawBytes -= droppedRaw
	r.coldBytes += int64(len(b.data)) - oldLen
	r.coldRaw -= droppedRaw
	r.coldCount -= int32(dropped)
	sh.retainedMessages.Add(-int64(dropped))
	sh.retainedBytes.Add(-droppedRaw)
	sh.forgotten += int64(dropped)
	decodePool.Put(ds)
}

// Forget drops every retained delivery on the stream — all three tiers,
// credited to Stats.Forgotten — while keeping its sequence-unwrap state,
// so addresses never move backwards if the stream resumes. The Orphanage
// calls this when it evicts an unclaimed stream, so Forget is the moment
// a dead stream's memory must actually return to the heap: the slot ring,
// seal stage and cold-block slice (with their parked payload buffers) are
// released, not just emptied, leaving only the 144-byte ring header
// behind the unwrap state. A resumed stream re-materialises its ring in
// appendLocked.
func (s *Store) Forget(id wire.StreamID) int {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := 0
	if sh.archived != nil {
		if as := sh.archived[id]; as != nil {
			n += s.forgetArchiveLocked(sh, as, id, &sh.forgotten)
		}
	}
	r, ok := sh.streams[id]
	if !ok {
		return n
	}
	n += int(r.count) + len(r.stage) + int(r.coldCount)
	sh.evictAllLocked(r, &sh.forgotten)
	r.slots, r.stage, r.cold = nil, nil, nil
	return n
}

// Streams lists the ids of every stream holding at least one delivery —
// in the hot window or only in the archive tier — sorted.
func (s *Store) Streams() []wire.StreamID {
	var out []wire.StreamID
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, r := range sh.streams {
			if r.count > 0 {
				out = append(out, id)
			}
		}
		for id, as := range sh.archived {
			if len(as.refs) == 0 && len(as.pending) == 0 {
				continue
			}
			if r, ok := sh.streams[id]; ok && r.count > 0 {
				continue // already listed from the hot window
			}
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StreamStats returns the retained-window description for one stream; ok
// is false when the store has never seen it.
func (s *Store) StreamStats(id wire.StreamID) (StreamStats, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var arch StreamStats
	var as *archStream
	if sh.archived != nil {
		if as = sh.archived[id]; as != nil {
			arch.ArchivedBlocks = len(as.refs)
			arch.ArchivePending = len(as.pending)
			arch.ArchiveFloor = as.floor
			for i := range as.refs {
				arch.ArchivedMessages += int(as.refs[i].Count)
				arch.ArchivedBytes += as.refs[i].Bytes
				arch.ArchivedRawBytes += as.refs[i].RawBytes
			}
		}
	}
	r, ok := sh.streams[id]
	if !ok {
		if as == nil || (len(as.refs) == 0 && len(as.pending) == 0) {
			return StreamStats{}, false
		}
		// Archive-only stream: recovered history with no live window yet.
		st := arch
		st.Stream = id
		last := as.lastSeqLocked()
		st.LastSeq = last
		st.NextWire = wire.Seq(last) + 1
		if len(as.refs) > 0 {
			st.FirstSeq = as.refs[0].FirstSeq
		} else {
			st.FirstSeq = as.pending[0].firstSeq
		}
		return st, true
	}
	st := StreamStats{
		Stream:       id,
		NextWire:     r.lastWire + 1,
		Count:        int(r.count) + len(r.stage) + int(r.coldCount),
		Bytes:        r.bytes + r.stageBytes + r.coldRaw,
		ColdBlocks:   len(r.cold),
		ColdMessages: int(r.coldCount),
		ColdBytes:    r.coldBytes,
		ColdRawBytes: r.coldRaw,
	}
	const (
		headerSize = int64(unsafe.Sizeof(ring{}))
		slotSize   = int64(unsafe.Sizeof(filtering.Delivery{}))
		blockSize  = int64(unsafe.Sizeof(coldBlock{}))
	)
	st.ResidentBytes = headerSize +
		int64(cap(r.slots))*slotSize + r.bytes +
		int64(cap(r.stage))*slotSize + r.stageBytes +
		int64(cap(r.cold))*blockSize + r.coldBytes
	if n := len(r.cold); n > 0 {
		if c, ok := codec.ByID(r.cold[n-1].codec); ok {
			st.Codec = c.Name()
		}
	}
	if r.count > 0 {
		st.LastSeq = r.maxExt
		switch {
		case len(r.cold) > 0:
			st.FirstSeq = r.cold[0].firstSeq
		case len(r.stage) > 0:
			st.FirstSeq = r.stage[0].StoreSeq
		default:
			st.FirstSeq = r.oldestLocked()
		}
	}
	st.ArchivedBlocks = arch.ArchivedBlocks
	st.ArchivedMessages = arch.ArchivedMessages
	st.ArchivedBytes = arch.ArchivedBytes
	st.ArchivedRawBytes = arch.ArchivedRawBytes
	st.ArchivePending = arch.ArchivePending
	st.ArchiveFloor = arch.ArchiveFloor
	if as != nil {
		// Pending-spill blocks left the cold slice but their entries are
		// still retained until the backend commits them.
		for bi := range as.pending {
			st.Count += as.pending[bi].count
			st.Bytes += as.pending[bi].rawBytes
		}
		switch {
		case len(as.refs) > 0:
			st.FirstSeq = as.refs[0].FirstSeq
		case len(as.pending) > 0:
			st.FirstSeq = as.pending[0].firstSeq
		}
		if r.count == 0 {
			if last := as.lastSeqLocked(); last > st.LastSeq {
				st.LastSeq = last
			}
		}
	}
	return st, true
}

// Stats returns an aggregate snapshot summed across shards. Counters and
// gauges for one shard are read under its lock together, so a snapshot
// taken while appenders run still satisfies the Stats invariant — gauges
// read after the lock drops could have moved past the counters they must
// reconcile with.
func (s *Store) Stats() Stats {
	st := Stats{Shards: s.shardCnt, Codec: s.codecName}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Appended += sh.appended
		st.Duplicates += sh.duplicates
		st.DroppedBehind += sh.droppedBehind
		st.EvictedCount += sh.evictedCount
		st.EvictedBytes += sh.evictedBytes
		st.EvictedAge += sh.evictedAge
		st.EvictedCold += sh.evictedCold
		st.Forgotten += sh.forgotten
		st.SealedBlocks += sh.sealedBlocks
		st.SealedMessages += sh.sealedMsgs
		for _, r := range sh.streams {
			if r.count > 0 {
				st.Streams++
			}
			st.ColdBlocks += len(r.cold)
			st.ColdBytes += r.coldBytes
			st.ColdRawBytes += r.coldRaw
		}
		st.RetainedMessages += sh.retainedMessages.Value()
		st.RetainedBytes += sh.retainedBytes.Value()
		st.EvictedArchive += sh.evictedArchive
		st.ArchiveFailed += sh.archiveFailed
		st.ArchiveRecovered += sh.archiveRecovered
		st.ArchiveSyncSpills += sh.spillSync
		st.ArchiveReadMessages += sh.archiveReadMsgs
		st.ArchivedBlocks += sh.archivedBlocks
		st.ArchivedMessages += sh.archivedMsgs
		st.ArchivedBytes += sh.archivedBytes
		st.ArchivedRawBytes += sh.archivedRaw
		st.ArchivePendingBlocks += sh.pendingBlocks
		sh.mu.Unlock()
	}
	if s.arch != nil {
		for _, q := range s.arch.queues {
			st.ArchiveQueueDepth += q.Len()
		}
		if s.arch.writeLat.Count() > 0 {
			st.ArchiveWriteP50Ms = s.arch.writeLat.Percentile(50)
			st.ArchiveWriteP99Ms = s.arch.writeLat.Percentile(99)
		}
		if s.arch.readLat.Count() > 0 {
			st.ArchiveReadP50Ms = s.arch.readLat.Percentile(50)
			st.ArchiveReadP99Ms = s.arch.readLat.Percentile(99)
		}
	}
	return st
}

// Package store implements the Stream Store: sharded, sequence-addressable
// retention for reconstructed stream deliveries.
//
// Garnet distributes live streams; the only history the paper's middleware
// keeps is the Orphanage's backlog for *unclaimed* streams (§4.2). The
// Stream Store generalises that into a first-class retention layer under
// every stream — GSN-style middleware treats retained history as a service
// queried by late and remote clients — so late joiners catch up on claimed
// streams, consumers run range queries over recent history, and future
// gateway/federation layers have a local buffer to replicate from.
//
// # Addressing
//
// The wire format's 16-bit sequence wraps every 65536 messages; retained
// history needs stable addresses. The store assigns every appended delivery
// a 64-bit extended sequence: the wire sequence unwrapped monotonically
// with RFC 1982 serial distances from the highest sequence seen. Extended
// sequences start at 65536 (so 0 always means "not retained") and are
// stamped onto Delivery.StoreSeq, making the retention address visible to
// every downstream consumer.
//
// # Sharding and retention
//
// State partitions into N shards keyed by wire.SensorID.Shard — the same
// Fibonacci partition the Filtering, Dispatching and control-plane
// services use — so a stream's ingest, retention and dispatch state all
// live behind locks that only that sensor's traffic contends on. Each
// stream owns a power-of-two ring of retained deliveries indexed by
// extended sequence (slot = seq mod ring size), grown on demand up to the
// count bound. Retention is bounded per stream by count, payload bytes and
// age; every bound evicts from the oldest end at append time, advancing a
// window low-water mark one slot at a time, so eviction is O(1) amortised
// and the append path allocates nothing at steady state: payload bytes are
// copied into slot-owned buffers that are recycled in place when a slot is
// reused, which also keeps borrowed radio frames zero-copy upstream — the
// store never retains a reference to caller memory.
package store

import (
	"sort"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Defaults for Options.
const (
	// DefaultShards matches the filter and dispatcher defaults so a
	// stream's whole path shards on one key.
	DefaultShards = 16
	// DefaultMaxMessages bounds the per-stream retained backlog. It is
	// deliberately larger than the Orphanage's default per-stream
	// capacity (128) so the orphan backlog view never outruns the store
	// that backs it.
	DefaultMaxMessages = 256

	// extBase is the first extended sequence a stream can be assigned.
	// Starting one full wire-sequence space up keeps 0 free to mean
	// "never retained" and makes backwards serial distances (late
	// out-of-order fills) mathematically incapable of underflowing.
	extBase = uint64(wire.SeqCount)

	// minRingSize is the initial ring allocation; rings double as the
	// retained window grows, so streams that only ever see a handful of
	// messages stay cheap.
	minRingSize = 8
)

// Options configures a Store. The zero value selects the defaults above
// with no byte or age bound.
type Options struct {
	// Shards partitions the per-stream retention state; <= 0 selects
	// DefaultShards, 1 a single shared table.
	Shards int
	// MaxMessages bounds retained deliveries per stream; <= 0 selects
	// DefaultMaxMessages. The ring is sized to the next power of two.
	MaxMessages int
	// MaxBytes bounds retained payload bytes per stream; <= 0 means
	// unbounded. The newest delivery is always retained, even when it
	// alone exceeds the bound.
	MaxBytes int64
	// MaxAge evicts deliveries older than this relative to the delivery
	// being appended (append-side eviction needs no timer and stays
	// deterministic on virtual clocks); <= 0 means unbounded.
	MaxAge time.Duration
}

// Stats is an aggregate snapshot summed across shards.
type Stats struct {
	Appended      int64 // deliveries handed to Append
	DroppedBehind int64 // arrived below the retained window; address assigned, not stored
	EvictedCount  int64 // evicted by the count/ring bound
	EvictedBytes  int64 // evicted by the byte bound
	EvictedAge    int64 // evicted by the age bound
	Forgotten     int64 // dropped by policy (Forget / EvictTo)

	// RetainedMessages/RetainedBytes are gauge values: what the store
	// holds right now, summed across the per-shard gauges.
	RetainedMessages int64
	RetainedBytes    int64

	Streams int // streams currently holding at least one delivery
	Shards  int
}

// StreamStats describes one stream's retained window.
type StreamStats struct {
	Stream   wire.StreamID
	FirstSeq uint64 // lowest retained extended sequence (0 when empty)
	LastSeq  uint64 // highest retained extended sequence (0 when empty)
	NextWire wire.Seq
	Count    int
	Bytes    int64
}

// Store is the Stream Store.
type Store struct {
	opts     Options
	ringMax  int
	shards   []*shard
	shardCnt int
}

type shard struct {
	mu      sync.Mutex
	streams map[wire.StreamID]*ring

	// Single-entry lookup cache, same trick as the filter: sensors emit
	// runs on one stream, so the common append skips the map hash.
	lastID wire.StreamID
	last   *ring

	// Hot-path counters are plain ints under mu; retained totals are
	// gauges so dashboards can read them without taking shard locks.
	appended      int64
	droppedBehind int64
	evictedCount  int64
	evictedBytes  int64
	evictedAge    int64
	forgotten     int64

	retainedMessages metrics.Gauge
	retainedBytes    metrics.Gauge
}

// ring is one stream's retention state: a power-of-two circular buffer of
// deliveries indexed by extended sequence, plus the unwrap state that
// survives even when every entry has been evicted.
type ring struct {
	slots []filtering.Delivery
	mask  uint64

	// Retained window [minExt, maxExt], both present when count > 0.
	// Entries inside the window may be holes (sequence gaps the radio
	// lost); a slot is occupied iff its StoreSeq matches the probed
	// extended sequence and lies inside the window.
	minExt, maxExt uint64
	count          int
	bytes          int64

	// Unwrap state: lastExt is the highest extended sequence ever
	// assigned and lastWire its wire sequence. Kept across Forget so a
	// stream's addresses never move backwards.
	lastExt  uint64
	lastWire wire.Seq
}

// New creates a Store.
func New(opts Options) *Store {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.MaxMessages <= 0 {
		opts.MaxMessages = DefaultMaxMessages
	}
	s := &Store{
		opts:     opts,
		ringMax:  ceilPow2(opts.MaxMessages),
		shardCnt: opts.Shards,
	}
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{streams: make(map[wire.StreamID]*ring)}
	}
	return s
}

// ceilPow2 rounds n up to a power of two ≥ minRingSize.
func ceilPow2(n int) int {
	p := minRingSize
	for p < n {
		p <<= 1
	}
	return p
}

func (s *Store) shardFor(id wire.StreamID) *shard {
	return s.shards[id.Sensor().Shard(s.shardCnt)]
}

func (sh *shard) lookupSlowLocked(id wire.StreamID) *ring {
	r, ok := sh.streams[id]
	if !ok {
		r = &ring{
			slots: make([]filtering.Delivery, minRingSize),
			mask:  minRingSize - 1,
		}
		sh.streams[id] = r
	}
	sh.lastID, sh.last = id, r
	return r
}

// presentLocked reports whether ext is occupied in r.
func (r *ring) presentLocked(ext uint64) bool {
	return r.count > 0 && ext >= r.minExt && ext <= r.maxExt &&
		r.slots[ext&r.mask].StoreSeq == ext
}

// Append retains one delivery and returns its extended sequence. The
// payload is copied into store-owned memory; d and its payload may be
// reused by the caller immediately. Deliveries whose extended sequence
// falls below the stream's retained window (late out-of-order fills racing
// eviction) are assigned their address but not stored.
func (s *Store) Append(d filtering.Delivery) uint64 {
	sh := s.shardFor(d.Msg.Stream)
	sh.mu.Lock()
	sh.appended++
	r := sh.last
	if r == nil || sh.lastID != d.Msg.Stream {
		r = sh.lookupSlowLocked(d.Msg.Stream)
	}

	// Unwrap the 16-bit wire sequence into the 64-bit address space.
	var ext uint64
	if r.lastExt == 0 {
		ext = extBase + uint64(d.Msg.Seq)
	} else {
		ext = uint64(int64(r.lastExt) + int64(r.lastWire.Distance(d.Msg.Seq)))
	}
	if ext > r.lastExt {
		r.lastExt, r.lastWire = ext, d.Msg.Seq
	}

	if r.count > 0 && ext < r.minExt {
		sh.droppedBehind++
		sh.mu.Unlock()
		return ext
	}

	if r.count == 0 {
		r.minExt, r.maxExt = ext, ext
	} else if ext > r.maxExt {
		// Advancing the window high end may push old entries out of the
		// ring span; grow the ring first while the count bound allows,
		// then evict whatever still falls below the new span.
		for ext-r.minExt >= uint64(len(r.slots)) && len(r.slots) < s.ringMax {
			r.growLocked(sh)
		}
		if span := uint64(len(r.slots)); ext-r.minExt >= span {
			target := ext - span + 1
			for r.count > 0 && r.oldestLocked() < target {
				sh.evictLowestLocked(r, &sh.evictedCount)
			}
			if r.count > 0 && r.minExt < target {
				r.minExt = target
			}
		}
		if r.count == 0 {
			r.minExt = ext
		}
		r.maxExt = ext
	}
	// ext ≤ maxExt and ≥ minExt here when filling a gap.

	slot := &r.slots[ext&r.mask]
	if slot.StoreSeq == ext && r.presentLocked(ext) {
		// Duplicate append of a retained sequence (the filter screens
		// these out upstream; be idempotent anyway): replace in place.
		r.bytes -= int64(len(slot.Msg.Payload))
		sh.retainedBytes.Add(-int64(len(slot.Msg.Payload)))
		r.count--
		sh.retainedMessages.Add(-1)
	}
	buf := slot.Msg.Payload
	*slot = d
	slot.Msg.Payload = append(buf[:0], d.Msg.Payload...)
	slot.StoreSeq = ext
	r.count++
	r.bytes += int64(len(slot.Msg.Payload))
	sh.retainedMessages.Add(1)
	sh.retainedBytes.Add(int64(len(slot.Msg.Payload)))

	// Retention bounds, oldest-first. The newest entry always survives.
	for r.count > s.opts.MaxMessages {
		sh.evictLowestLocked(r, &sh.evictedCount)
	}
	if s.opts.MaxBytes > 0 {
		for r.bytes > s.opts.MaxBytes && r.count > 1 {
			sh.evictLowestLocked(r, &sh.evictedBytes)
		}
	}
	if s.opts.MaxAge > 0 {
		cutoff := d.At.Add(-s.opts.MaxAge)
		for r.count > 1 {
			old := &r.slots[r.oldestLocked()&r.mask]
			if !old.At.Before(cutoff) {
				break
			}
			sh.evictLowestLocked(r, &sh.evictedAge)
		}
	}
	sh.mu.Unlock()
	return ext
}

// growLocked doubles the ring and re-homes retained entries (extended
// sequences are stable; only the slot mapping changes). Caller holds mu.
func (r *ring) growLocked(sh *shard) {
	old := r.slots
	oldMask := r.mask
	r.slots = make([]filtering.Delivery, len(old)*2)
	r.mask = uint64(len(r.slots)) - 1
	if r.count == 0 {
		return
	}
	for ext := r.minExt; ext <= r.maxExt; ext++ {
		if e := old[ext&oldMask]; e.StoreSeq == ext {
			r.slots[ext&r.mask] = e
		}
	}
}

// oldestLocked returns the lowest occupied extended sequence. It never
// mutates the window: minExt moves only on eviction, so read queries can
// never change a later append's behind-window decision. Caller holds mu;
// r.count must be > 0.
func (r *ring) oldestLocked() uint64 {
	ext := r.minExt
	for !r.presentLocked(ext) {
		ext++
	}
	return ext
}

// evictLowestLocked removes the oldest retained entry, crediting the
// eviction to *reason. The slot keeps its payload buffer for reuse; only
// the occupancy marker and accounting change. Caller holds mu.
func (sh *shard) evictLowestLocked(r *ring, reason *int64) {
	ext := r.oldestLocked()
	slot := &r.slots[ext&r.mask]
	r.bytes -= int64(len(slot.Msg.Payload))
	sh.retainedBytes.Add(-int64(len(slot.Msg.Payload)))
	slot.StoreSeq = 0
	slot.Msg.Payload = slot.Msg.Payload[:0]
	r.count--
	sh.retainedMessages.Add(-1)
	*reason++
	r.minExt = ext + 1
	if r.count == 0 {
		r.minExt, r.maxExt = 0, 0
	}
}

// evictAllLocked empties the ring, crediting *reason per entry.
func (sh *shard) evictAllLocked(r *ring, reason *int64) {
	for r.count > 0 {
		sh.evictLowestLocked(r, reason)
	}
}

// LastSeq returns the highest extended sequence ever assigned on the
// stream (retained or not); ok is false when the store has never seen it.
func (s *Store) LastSeq(id wire.StreamID) (uint64, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.streams[id]
	if !ok || r.lastExt == 0 {
		return 0, false
	}
	return r.lastExt, true
}

// FirstSeq returns the lowest retained extended sequence; ok is false when
// nothing is retained.
func (s *Store) FirstSeq(id wire.StreamID) (uint64, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.streams[id]
	if !ok || r.count == 0 {
		return 0, false
	}
	return r.oldestLocked(), true
}

// OldestSince returns the extended sequence and payload size of the first
// retained entry at or after from.
func (s *Store) OldestSince(id wire.StreamID, from uint64) (seq uint64, size int, ok bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, rok := sh.streams[id]
	if !rok || r.count == 0 {
		return 0, 0, false
	}
	ext := r.oldestLocked()
	if ext < from {
		ext = from
	}
	for ; ext <= r.maxExt; ext++ {
		if r.presentLocked(ext) {
			return ext, len(r.slots[ext&r.mask].Msg.Payload), true
		}
	}
	return 0, 0, false
}

// Range returns copies of the retained deliveries with extended sequences
// in [from, to], ascending. Payloads are detached copies; the result is
// safe to hold indefinitely.
func (s *Store) Range(id wire.StreamID, from, to uint64) []filtering.Delivery {
	return s.AppendRange(nil, id, from, to)
}

// AppendRange is Range appending into dst (payloads still freshly copied),
// for callers that recycle the outer slice across replays.
func (s *Store) AppendRange(dst []filtering.Delivery, id wire.StreamID, from, to uint64) []filtering.Delivery {
	s.RangeFunc(id, from, to, func(d filtering.Delivery) bool {
		d.Msg.Payload = append([]byte(nil), d.Msg.Payload...)
		dst = append(dst, d)
		return true
	})
	return dst
}

// RangeFunc visits retained deliveries with extended sequences in
// [from, to] ascending, stopping early when fn returns false. The visited
// deliveries borrow store memory: they are valid only during the fn call,
// which runs under the stream's shard lock — fn must not call back into
// the Store and must copy anything it keeps.
func (s *Store) RangeFunc(id wire.StreamID, from, to uint64, fn func(d filtering.Delivery) bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.streams[id]
	if !ok || r.count == 0 {
		return
	}
	lo, hi := from, to
	if low := r.oldestLocked(); lo < low {
		lo = low
	}
	if hi > r.maxExt {
		hi = r.maxExt
	}
	for ext := lo; ext <= hi; ext++ {
		if r.presentLocked(ext) && !fn(r.slots[ext&r.mask]) {
			return
		}
	}
}

// WindowStats returns the number of retained deliveries and their total
// payload bytes with extended sequences in [from, to] — what a replay of
// that window would materialise. Policy views (the Orphanage) report
// their backlog from this truth so byte/age eviction inside a window can
// never make the view overstate what a claim will return.
func (s *Store) WindowStats(id wire.StreamID, from, to uint64) (count int, bytes int64) {
	s.RangeFunc(id, from, to, func(d filtering.Delivery) bool {
		count++
		bytes += int64(len(d.Msg.Payload))
		return true
	})
	return count, bytes
}

// Latest returns a copy of the newest retained delivery on the stream.
func (s *Store) Latest(id wire.StreamID) (filtering.Delivery, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.streams[id]
	if !ok || r.count == 0 {
		return filtering.Delivery{}, false
	}
	d := r.slots[r.maxExt&r.mask]
	d.Msg.Payload = append([]byte(nil), d.Msg.Payload...)
	return d, true
}

// Since returns copies of the retained deliveries received at or after t,
// ascending by extended sequence.
func (s *Store) Since(id wire.StreamID, t time.Time) []filtering.Delivery {
	var out []filtering.Delivery
	s.RangeFunc(id, 0, ^uint64(0), func(d filtering.Delivery) bool {
		if !d.At.Before(t) {
			d.Msg.Payload = append([]byte(nil), d.Msg.Payload...)
			out = append(out, d)
		}
		return true
	})
	return out
}

// Snapshot returns the last retained value of every stream matched by
// pred (nil matches all), sorted by stream id — the materialised-view
// query a dashboard or gateway uses to prime its own state.
func (s *Store) Snapshot(pred func(wire.StreamID) bool) []filtering.Delivery {
	var out []filtering.Delivery
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, r := range sh.streams {
			if r.count == 0 || (pred != nil && !pred(id)) {
				continue
			}
			d := r.slots[r.maxExt&r.mask]
			d.Msg.Payload = append([]byte(nil), d.Msg.Payload...)
			out = append(out, d)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Msg.Stream < out[j].Msg.Stream })
	return out
}

// EvictTo drops retained deliveries with extended sequences below upto,
// returning how many were dropped (credited to Stats.Forgotten). Policy
// layers — the Orphanage advancing its backlog window — call this.
func (s *Store) EvictTo(id wire.StreamID, upto uint64) int {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.streams[id]
	if !ok {
		return 0
	}
	n := 0
	for r.count > 0 && r.oldestLocked() < upto {
		sh.evictLowestLocked(r, &sh.forgotten)
		n++
	}
	return n
}

// Forget drops every retained delivery on the stream (credited to
// Stats.Forgotten) while keeping its sequence-unwrap state, so addresses
// never move backwards if the stream resumes. The Orphanage calls this
// when it evicts an unclaimed stream.
func (s *Store) Forget(id wire.StreamID) int {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.streams[id]
	if !ok {
		return 0
	}
	n := r.count
	sh.evictAllLocked(r, &sh.forgotten)
	return n
}

// Streams lists the ids of every stream holding at least one delivery,
// sorted.
func (s *Store) Streams() []wire.StreamID {
	var out []wire.StreamID
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, r := range sh.streams {
			if r.count > 0 {
				out = append(out, id)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StreamStats returns the retained-window description for one stream; ok
// is false when the store has never seen it.
func (s *Store) StreamStats(id wire.StreamID) (StreamStats, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.streams[id]
	if !ok {
		return StreamStats{}, false
	}
	st := StreamStats{
		Stream:   id,
		NextWire: r.lastWire + 1,
		Count:    r.count,
		Bytes:    r.bytes,
	}
	if r.count > 0 {
		st.FirstSeq, st.LastSeq = r.oldestLocked(), r.maxExt
	}
	return st, true
}

// Stats returns an aggregate snapshot summed across shards.
func (s *Store) Stats() Stats {
	st := Stats{Shards: s.shardCnt}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Appended += sh.appended
		st.DroppedBehind += sh.droppedBehind
		st.EvictedCount += sh.evictedCount
		st.EvictedBytes += sh.evictedBytes
		st.EvictedAge += sh.evictedAge
		st.Forgotten += sh.forgotten
		for _, r := range sh.streams {
			if r.count > 0 {
				st.Streams++
			}
		}
		sh.mu.Unlock()
		st.RetainedMessages += sh.retainedMessages.Value()
		st.RetainedBytes += sh.retainedBytes.Value()
	}
	return st
}

// Package archive defines the Stream Store's durable retention tier: a
// pluggable block backend that receives sealed compressed blocks when
// cold-budget eviction would otherwise discard them, and serves them
// back to the store's read path so replay stitches
// archive → cold → hot → live transparently.
//
// The unit of exchange is the store's sealed block exactly as the codec
// package encoded it — a self-contained byte string tagged with its
// codec ID — so a backend never inspects payloads: it files opaque
// blocks under (stream, sequence range) and hands them back. Blocks on
// one stream arrive in ascending, non-overlapping sequence order (the
// store spills its cold tier oldest-first), which backends may rely on.
//
// # Contract
//
// Backends are safe for concurrent use: the store calls Append from its
// per-shard archiver goroutines while readers call Open under shard
// locks. Append must copy data before returning — the store recycles
// the buffer immediately. Blocks are addressed by their last extended
// sequence, which is immutable for the life of the block (the first
// sequence is logical bookkeeping the store may advance as retention
// policy trims a block's prefix; see DeleteBefore's floor).
//
// DeleteBefore(stream, upto) is the retention primitive: blocks whose
// last sequence falls below upto are removed, and upto is persisted as
// the stream's floor — entries below the floor inside a surviving
// (straddling) block are logically dead, and both the store and a
// recovering process filter them out on decode. The floor only ever
// advances.
package archive

import (
	"sort"
	"sync"

	"github.com/garnet-middleware/garnet/internal/store/codec"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Ref describes one archived block: the codec that encoded it, the
// extended-sequence span it covers, and its size in entries, payload
// bytes and encoded bytes. LastUnix is the reception time (unix
// nanoseconds) of the newest entry sealed inside, the timestamp
// age-based archive retention keys on.
type Ref struct {
	Codec    codec.ID
	FirstSeq uint64
	LastSeq  uint64
	Count    int32
	RawBytes int64
	Bytes    int64
	LastUnix int64
}

// StreamState is one stream's archived state as a backend reports it:
// the surviving block refs ascending by sequence, and the retention
// floor (entries below it are logically deleted even when a straddling
// block still physically holds them).
type StreamState struct {
	Stream wire.StreamID
	Floor  uint64
	Refs   []Ref
}

// Backend is the durable block store the Stream Store spills to.
type Backend interface {
	// Append durably files one sealed block. data must be copied before
	// returning; the caller recycles the buffer. Blocks per stream
	// arrive in ascending, non-overlapping sequence order.
	Append(stream wire.StreamID, ref Ref, data []byte) error
	// Open appends the encoded bytes of the block whose last sequence
	// is lastSeq to dst and returns the extended slice. It fails when
	// the block is unknown or its stored bytes fail integrity checks.
	Open(dst []byte, stream wire.StreamID, lastSeq uint64) ([]byte, error)
	// List returns the stream's surviving refs (ascending) and floor.
	// A stream with no archived blocks returns an empty state, not an
	// error.
	List(stream wire.StreamID) (StreamState, error)
	// Streams visits every stream holding archived blocks (or a bare
	// floor), in unspecified order, stopping on the first error fn
	// returns. The store's recovery path rebuilds its in-memory index
	// from this.
	Streams(fn func(StreamState) error) error
	// DeleteBefore removes the stream's blocks with LastSeq < upto and
	// persists floor = max(floor, upto). Unknown streams record the
	// floor alone.
	DeleteBefore(stream wire.StreamID, upto uint64) error
	// Forget removes every archived block and the floor for the stream.
	Forget(stream wire.StreamID) error
}

// Mem is the in-memory reference backend: the Backend contract with no
// durability, for tests and experiments. A Mem shared between two
// stores also stands in for a restart — the second store recovers the
// first one's spilled history from it.
type Mem struct {
	mu      sync.Mutex
	streams map[wire.StreamID]*memStream
}

type memStream struct {
	floor uint64
	refs  []Ref
	data  [][]byte // parallel to refs
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{streams: make(map[wire.StreamID]*memStream)}
}

func (m *Mem) stream(id wire.StreamID) *memStream {
	ms, ok := m.streams[id]
	if !ok {
		ms = &memStream{}
		m.streams[id] = ms
	}
	return ms
}

// Append implements Backend.
func (m *Mem) Append(stream wire.StreamID, ref Ref, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms := m.stream(stream)
	ms.refs = append(ms.refs, ref)
	ms.data = append(ms.data, append([]byte(nil), data...))
	return nil
}

// Open implements Backend.
func (m *Mem) Open(dst []byte, stream wire.StreamID, lastSeq uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms, ok := m.streams[stream]
	if ok {
		for i := range ms.refs {
			if ms.refs[i].LastSeq == lastSeq {
				return append(dst, ms.data[i]...), nil
			}
		}
	}
	return dst, ErrNotFound
}

// List implements Backend.
func (m *Mem) List(stream wire.StreamID) (StreamState, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms, ok := m.streams[stream]
	if !ok {
		return StreamState{Stream: stream}, nil
	}
	return StreamState{
		Stream: stream,
		Floor:  ms.floor,
		Refs:   append([]Ref(nil), ms.refs...),
	}, nil
}

// Streams implements Backend. Streams are visited in id order so Mem
// behaves deterministically under tests.
func (m *Mem) Streams(fn func(StreamState) error) error {
	m.mu.Lock()
	ids := make([]wire.StreamID, 0, len(m.streams))
	for id := range m.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	states := make([]StreamState, 0, len(ids))
	for _, id := range ids {
		ms := m.streams[id]
		states = append(states, StreamState{
			Stream: id,
			Floor:  ms.floor,
			Refs:   append([]Ref(nil), ms.refs...),
		})
	}
	m.mu.Unlock()
	for _, st := range states {
		if err := fn(st); err != nil {
			return err
		}
	}
	return nil
}

// DeleteBefore implements Backend.
func (m *Mem) DeleteBefore(stream wire.StreamID, upto uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms := m.stream(stream)
	if upto > ms.floor {
		ms.floor = upto
	}
	k := 0
	for k < len(ms.refs) && ms.refs[k].LastSeq < upto {
		k++
	}
	if k > 0 {
		ms.refs = append(ms.refs[:0], ms.refs[k:]...)
		ms.data = append(ms.data[:0], ms.data[k:]...)
	}
	return nil
}

// Forget implements Backend.
func (m *Mem) Forget(stream wire.StreamID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.streams, stream)
	return nil
}

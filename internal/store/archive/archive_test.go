package archive

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/garnet-middleware/garnet/internal/store/codec"
	"github.com/garnet-middleware/garnet/internal/wire"
)

func sid(t *testing.T, sensor uint32, idx int) wire.StreamID {
	t.Helper()
	id, err := wire.NewStreamID(wire.SensorID(sensor), wire.StreamIndex(idx))
	if err != nil {
		t.Fatalf("stream id: %v", err)
	}
	return id
}

func blk(firstSeq, lastSeq uint64, fill byte, n int) (Ref, []byte) {
	data := bytes.Repeat([]byte{fill}, n)
	return Ref{
		Codec:    codec.IDRaw,
		FirstSeq: firstSeq,
		LastSeq:  lastSeq,
		Count:    int32(lastSeq - firstSeq + 1),
		RawBytes: int64(n) * 2,
		Bytes:    int64(n),
		LastUnix: int64(lastSeq) * 1e9,
	}, data
}

// openBoth builds a fresh Mem and FS backend and runs the test against
// each — the contract is backend-independent.
func openBoth(t *testing.T, run func(t *testing.T, b Backend)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) { run(t, NewMem()) })
	t.Run("fs", func(t *testing.T) {
		f, err := OpenFS(t.TempDir())
		if err != nil {
			t.Fatalf("OpenFS: %v", err)
		}
		defer f.Close()
		run(t, f)
	})
}

func TestBackendContract(t *testing.T) {
	openBoth(t, func(t *testing.T, b Backend) {
		a, bb := sid(t, 7, 0), sid(t, 7, 1)

		if _, err := b.Open(nil, a, 99); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Open on empty backend: %v, want ErrNotFound", err)
		}

		blocks := []struct {
			first, last uint64
			fill        byte
			n           int
		}{{10, 19, 0xAA, 64}, {20, 29, 0xBB, 32}, {30, 39, 0xCC, 48}}
		for _, bl := range blocks {
			ref, data := blk(bl.first, bl.last, bl.fill, bl.n)
			if err := b.Append(a, ref, data); err != nil {
				t.Fatalf("Append(%d): %v", bl.last, err)
			}
		}
		refB, dataB := blk(100, 105, 0xDD, 16)
		if err := b.Append(bb, refB, dataB); err != nil {
			t.Fatalf("Append(b): %v", err)
		}

		// Open round-trips exact bytes and preserves the dst prefix.
		for _, bl := range blocks {
			_, want := blk(bl.first, bl.last, bl.fill, bl.n)
			got, err := b.Open([]byte("prefix"), a, bl.last)
			if err != nil {
				t.Fatalf("Open(%d): %v", bl.last, err)
			}
			if !bytes.Equal(got[:6], []byte("prefix")) || !bytes.Equal(got[6:], want) {
				t.Fatalf("Open(%d): round-trip mismatch (%d bytes)", bl.last, len(got))
			}
		}
		if _, err := b.Open(nil, a, 25); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Open(25) hits no block boundary: %v, want ErrNotFound", err)
		}

		st, err := b.List(a)
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		if st.Floor != 0 || len(st.Refs) != 3 {
			t.Fatalf("List = floor %d, %d refs, want 0, 3", st.Floor, len(st.Refs))
		}
		for i, bl := range blocks {
			want, _ := blk(bl.first, bl.last, bl.fill, bl.n)
			if st.Refs[i] != want {
				t.Fatalf("ref %d = %+v, want %+v", i, st.Refs[i], want)
			}
		}

		var visited []wire.StreamID
		if err := b.Streams(func(ss StreamState) error {
			visited = append(visited, ss.Stream)
			return nil
		}); err != nil {
			t.Fatalf("Streams: %v", err)
		}
		if len(visited) != 2 || visited[0] != a || visited[1] != bb {
			t.Fatalf("Streams visited %v, want [%v %v]", visited, a, bb)
		}

		// DeleteBefore removes whole blocks with LastSeq < upto and
		// persists the floor; a straddled block (25 is inside 20..29)
		// survives with the floor recording the logical cut.
		if err := b.DeleteBefore(a, 25); err != nil {
			t.Fatalf("DeleteBefore: %v", err)
		}
		st, _ = b.List(a)
		if st.Floor != 25 || len(st.Refs) != 2 || st.Refs[0].LastSeq != 29 {
			t.Fatalf("after DeleteBefore(25): floor %d, %d refs, head last %d", st.Floor, len(st.Refs), st.Refs[0].LastSeq)
		}
		if _, err := b.Open(nil, a, 19); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Open(19) after delete: %v, want ErrNotFound", err)
		}

		// The floor only advances.
		if err := b.DeleteBefore(a, 20); err != nil {
			t.Fatalf("DeleteBefore(20): %v", err)
		}
		if st, _ = b.List(a); st.Floor != 25 {
			t.Fatalf("floor went backwards: %d", st.Floor)
		}

		if err := b.Forget(bb); err != nil {
			t.Fatalf("Forget: %v", err)
		}
		if st, _ = b.List(bb); st.Floor != 0 || len(st.Refs) != 0 {
			t.Fatalf("forgotten stream still lists %+v", st)
		}
		if _, err := b.Open(nil, bb, 105); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Open on forgotten stream: %v, want ErrNotFound", err)
		}
	})
}

// TestFSReopen pins the recovery contract: a re-opened directory serves
// exactly the state the closed one held — blocks, floors, forgets — and
// accepts further appends.
func TestFSReopen(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	a, bb := sid(t, 3, 0), sid(t, 900, 2) // different fs shards, most likely
	ref1, data1 := blk(10, 19, 0x11, 40)
	ref2, data2 := blk(20, 29, 0x22, 40)
	refB, dataB := blk(5, 9, 0x33, 24)
	for _, ap := range []struct {
		id   wire.StreamID
		ref  Ref
		data []byte
	}{{a, ref1, data1}, {a, ref2, data2}, {bb, refB, dataB}} {
		if err := f.Append(ap.id, ap.ref, ap.data); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := f.DeleteBefore(a, 15); err != nil {
		t.Fatalf("DeleteBefore: %v", err)
	}
	if err := f.Forget(bb); err != nil {
		t.Fatalf("Forget: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	g, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	st, _ := g.List(a)
	if st.Floor != 15 || len(st.Refs) != 2 {
		t.Fatalf("recovered: floor %d, %d refs, want 15, 2", st.Floor, len(st.Refs))
	}
	got, err := g.Open(nil, a, 19)
	if err != nil || !bytes.Equal(got, data1) {
		t.Fatalf("recovered Open(19): %v (%d bytes)", err, len(got))
	}
	if st, _ = g.List(bb); len(st.Refs) != 0 {
		t.Fatalf("forget did not survive reopen: %+v", st)
	}

	// The recovered backend keeps appending where the old one stopped.
	ref3, data3 := blk(30, 39, 0x44, 40)
	if err := g.Append(a, ref3, data3); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	h, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer h.Close()
	got, err = h.Open(nil, a, 39)
	if err != nil || !bytes.Equal(got, data3) {
		t.Fatalf("Open(39) after second recovery: %v", err)
	}
}

// TestFSTruncatedSegment kills a deployment mid-spill: the newest block's
// segment bytes are torn off while its manifest record survived. Recovery
// must serve every complete block, report the torn ref, and never panic —
// and appending over the dead extent must work.
func TestFSTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	a := sid(t, 12, 0)
	ref1, data1 := blk(10, 19, 0x5A, 50)
	ref2, data2 := blk(20, 29, 0x6B, 50)
	ref3, data3 := blk(30, 39, 0x7C, 50)
	for _, ap := range []struct {
		ref  Ref
		data []byte
	}{{ref1, data1}, {ref2, data2}, {ref3, data3}} {
		if err := f.Append(a, ap.ref, ap.data); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	f.Close()

	seg := filepath.Join(dir, segName(fsShardOf(a)))
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(seg, st.Size()-7); err != nil { // tear into block 3
		t.Fatalf("truncate: %v", err)
	}

	// The read-only inspection view of the crashed directory reports the
	// torn ref before anything heals it.
	rep, err := ScanFS(dir)
	if err != nil {
		t.Fatalf("ScanFS: %v", err)
	}
	torn := 0
	for _, sr := range rep.Shards {
		torn += sr.TornRefs
	}
	if torn != 1 {
		t.Fatalf("ScanFS reports %d torn refs, want 1", torn)
	}

	g, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("recover from torn segment: %v", err)
	}
	ls, _ := g.List(a)
	if len(ls.Refs) != 2 || ls.Refs[1].LastSeq != 29 {
		t.Fatalf("recovered %d refs (last %d), want the 2 complete blocks", len(ls.Refs), ls.Refs[len(ls.Refs)-1].LastSeq)
	}
	if _, err := g.Open(nil, a, 39); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn block still opens: %v", err)
	}
	if got, err := g.Open(nil, a, 29); err != nil || !bytes.Equal(got, data2) {
		t.Fatalf("complete block 2 lost: %v", err)
	}

	// The dead extent is overwritten by the next spill, no gap — and the
	// healed manifest must not resurrect the torn record as a duplicate
	// ref now that live bytes sit under its extent again.
	if err := g.Append(a, ref3, data3); err != nil {
		t.Fatalf("Append over dead extent: %v", err)
	}
	g.Close()
	h, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer h.Close()
	ls, _ = h.List(a)
	if len(ls.Refs) != 3 {
		t.Fatalf("after re-spill: %d refs, want exactly 3 (torn record must not resurrect)", len(ls.Refs))
	}
	if got, err := h.Open(nil, a, 39); err != nil || !bytes.Equal(got, data3) {
		t.Fatalf("re-spilled block: %v", err)
	}
}

// TestFSTruncatedManifest kills the deployment mid-manifest-write: the
// torn trailing record (and only it) is discarded.
func TestFSTruncatedManifest(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	a := sid(t, 4, 3)
	ref1, data1 := blk(10, 19, 0x10, 30)
	ref2, data2 := blk(20, 29, 0x20, 30)
	if err := f.Append(a, ref1, data1); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := f.Append(a, ref2, data2); err != nil {
		t.Fatalf("Append: %v", err)
	}
	f.Close()

	log := filepath.Join(dir, logName(fsShardOf(a)))
	st, err := os.Stat(log)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(log, st.Size()-5); err != nil { // tear into record 2
		t.Fatalf("truncate: %v", err)
	}

	rep, err := ScanFS(dir)
	if err != nil {
		t.Fatalf("ScanFS: %v", err)
	}
	tornShards := 0
	for _, sr := range rep.Shards {
		if sr.TornManifest {
			tornShards++
		}
	}
	if tornShards != 1 {
		t.Fatalf("ScanFS reports %d torn manifests, want 1", tornShards)
	}

	g, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("recover from torn manifest: %v", err)
	}
	defer g.Close()
	ls, _ := g.List(a)
	if len(ls.Refs) != 1 || ls.Refs[0].LastSeq != 19 {
		t.Fatalf("recovered %d refs, want only the committed block", len(ls.Refs))
	}
	if got, err := g.Open(nil, a, 19); err != nil || !bytes.Equal(got, data1) {
		t.Fatalf("committed block lost: %v", err)
	}
	// The torn tail is overwritten cleanly by the next manifest record,
	// with no duplicate once the block is re-spilled.
	if err := g.Append(a, ref2, data2); err != nil {
		t.Fatalf("Append after torn manifest: %v", err)
	}
	if ls, _ = g.List(a); len(ls.Refs) != 2 {
		t.Fatalf("after re-spill: %d refs, want 2", len(ls.Refs))
	}
}

// TestFSCorruptManifestRecord flips a byte inside a committed record: the
// CRC frame must stop replay there (losing the tail) without a panic.
func TestFSCorruptManifestRecord(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	a := sid(t, 21, 1)
	for i := uint64(0); i < 3; i++ {
		ref, data := blk(10+10*i, 19+10*i, byte(i), 30)
		if err := f.Append(a, ref, data); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	f.Close()

	log := filepath.Join(dir, logName(fsShardOf(a)))
	raw, err := os.ReadFile(log)
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	raw[recAddLen+10] ^= 0xFF // corrupt the second record's body
	if err := os.WriteFile(log, raw, 0o644); err != nil {
		t.Fatalf("write log: %v", err)
	}

	g, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("recover from corrupt manifest: %v", err)
	}
	defer g.Close()
	ls, _ := g.List(a)
	if len(ls.Refs) != 1 || ls.Refs[0].LastSeq != 19 {
		t.Fatalf("recovered %d refs, want 1 (replay stops at the corrupt record)", len(ls.Refs))
	}
}

// TestScanFSReport pins the inspection view: per-shard record counts and
// committed extents, per-stream ranges and sizes.
func TestScanFSReport(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	a := sid(t, 5, 0)
	ref1, data1 := blk(100, 149, 0xAB, 80)
	ref2, data2 := blk(150, 199, 0xCD, 70)
	if err := f.Append(a, ref1, data1); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := f.Append(a, ref2, data2); err != nil {
		t.Fatalf("Append: %v", err)
	}
	f.Close()

	rep, err := ScanFS(dir)
	if err != nil {
		t.Fatalf("ScanFS: %v", err)
	}
	if len(rep.Shards) != FSShards {
		t.Fatalf("%d shard reports, want %d", len(rep.Shards), FSShards)
	}
	sh := rep.Shards[fsShardOf(a)]
	if sh.Records != 2 || sh.TornManifest || sh.TornRefs != 0 || sh.Committed != 150 || sh.SegBytes != 150 {
		t.Fatalf("shard report %+v, want 2 records, committed/seg 150", sh)
	}
	if len(rep.Streams) != 1 {
		t.Fatalf("%d stream reports, want 1", len(rep.Streams))
	}
	sr := rep.Streams[0]
	if sr.Stream != a || sr.Blocks != 2 || sr.FirstSeq != 100 || sr.LastSeq != 199 ||
		sr.Count != 100 || sr.Bytes != 150 || sr.RawBytes != 300 {
		t.Fatalf("stream report %+v", sr)
	}

	// ScanFS of a missing directory reports empty shards, not an error —
	// the inspect tool must cope with a fresh deployment.
	rep, err = ScanFS(filepath.Join(dir, "nope"))
	if err != nil {
		t.Fatalf("ScanFS(missing): %v", err)
	}
	for _, sr := range rep.Shards {
		if sr.Records != 0 || sr.SegBytes != 0 {
			t.Fatalf("missing dir scans non-empty: %+v", sr)
		}
	}
}

package archive

import (
	"testing"

	"github.com/garnet-middleware/garnet/internal/store/codec"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// FuzzManifestDecode pins the manifest decoding contract: arbitrary bytes
// — a scrambled, truncated or hostile on-disk manifest — must come back
// as an error or a valid record, never a panic, and a full replay over
// them must terminate with a consistent index.
func FuzzManifestDecode(f *testing.F) {
	// Seed with one intact record of each kind, plus truncations and a
	// flipped CRC, so the fuzzer starts on the format's edge.
	add := appendManifestRec(nil, &manifestRec{
		kind:   recAdd,
		stream: wire.StreamID(0x0701),
		ref: Ref{
			Codec: codec.IDRaw, FirstSeq: 10, LastSeq: 19,
			Count: 10, RawBytes: 128, Bytes: 64, LastUnix: 1e9,
		},
		off:     0,
		dataCRC: 0xDEADBEEF,
	})
	floor := appendManifestRec(nil, &manifestRec{kind: recFloor, stream: wire.StreamID(0x0701), floor: 15})
	forget := appendManifestRec(nil, &manifestRec{kind: recForget, stream: wire.StreamID(0x0701)})
	f.Add(add)
	f.Add(floor)
	f.Add(forget)
	f.Add(append(append([]byte(nil), add...), floor...))
	f.Add(add[:len(add)-3])
	bad := append([]byte(nil), add...)
	bad[0] ^= 0xFF
	f.Add(bad)
	f.Add([]byte{})
	f.Add([]byte{recAdd})

	f.Fuzz(func(t *testing.T, raw []byte) {
		rec, n, err := decodeManifestRec(raw)
		if err == nil {
			if n <= 0 || n > len(raw) {
				t.Fatalf("decoded record claims %d of %d bytes", n, len(raw))
			}
			if rec.kind != recAdd && rec.kind != recFloor && rec.kind != recForget {
				t.Fatalf("decoded unknown kind %d without error", rec.kind)
			}
			if rec.kind == recAdd && rec.ref.LastSeq < rec.ref.FirstSeq {
				t.Fatalf("decoded inverted seq range %d..%d", rec.ref.FirstSeq, rec.ref.LastSeq)
			}
		}
		// Replay must terminate and leave only internally consistent
		// streams whatever the input — this is the crash-recovery path.
		streams := make(map[wire.StreamID]*fsStream)
		committed, records, tornRefs := replayManifest(raw, 1<<20, streams)
		if committed < 0 || records < 0 || tornRefs < 0 {
			t.Fatalf("negative replay summary: %d %d %d", committed, records, tornRefs)
		}
		for id, fs := range streams {
			for i := range fs.refs {
				if fs.refs[i].LastSeq < fs.floor {
					t.Fatalf("stream %v: ref below floor survived replay", id)
				}
			}
		}
	})
}

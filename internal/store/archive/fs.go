package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/garnet-middleware/garnet/internal/store/codec"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Errors the package's backends return. ErrCorrupt wraps every
// integrity failure (manifest or block bytes that fail their CRC or
// frame bounds), mirroring the codec package's corruption contract:
// arbitrary on-disk bytes must surface as an error, never a panic.
var (
	ErrNotFound = errors.New("archive: block not found")
	ErrCorrupt  = errors.New("archive: corrupt")
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// FSShards is the filesystem backend's fixed shard count: streams hash
// onto FSShards segment/manifest file pairs with the same Fibonacci
// partition the store uses. It is a property of the on-disk layout, not
// of the store reading it — a deployment may restart with a different
// store shard count and still recover every stream.
const FSShards = 16

// Manifest record kinds. Persisted on disk — never renumber.
const (
	recAdd    = 1 // one block appended: ref + segment extent + data CRC
	recFloor  = 2 // retention floor advanced (DeleteBefore)
	recForget = 3 // stream dropped entirely
)

// Manifest record sizes by kind, including the 4-byte CRC frame.
const (
	recHeader    = 4 + 1 + 4 // crc32 | kind | stream
	recAddLen    = recHeader + 1 + 8 + 8 + 4 + 8 + 8 + 8 + 4 + 4
	recFloorLen  = recHeader + 8
	recForgetLen = recHeader
)

// manifestRec is one decoded manifest record.
type manifestRec struct {
	kind   uint8
	stream wire.StreamID

	// recAdd fields.
	ref     Ref
	off     int64
	dataCRC uint32

	// recFloor field.
	floor uint64
}

// appendManifestRec encodes rec onto dst, CRC-framed.
func appendManifestRec(dst []byte, rec *manifestRec) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, rec.kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rec.stream))
	switch rec.kind {
	case recAdd:
		dst = append(dst, byte(rec.ref.Codec))
		dst = binary.LittleEndian.AppendUint64(dst, rec.ref.FirstSeq)
		dst = binary.LittleEndian.AppendUint64(dst, rec.ref.LastSeq)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(rec.ref.Count))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.ref.RawBytes))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.ref.LastUnix))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.off))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(rec.ref.Bytes))
		dst = binary.LittleEndian.AppendUint32(dst, rec.dataCRC)
	case recFloor:
		dst = binary.LittleEndian.AppendUint64(dst, rec.floor)
	}
	crc := crc32.ChecksumIEEE(dst[start+4:])
	binary.LittleEndian.PutUint32(dst[start:], crc)
	return dst
}

// decodeManifestRec decodes the record at the head of b, returning the
// bytes it consumed. Errors mean the tail of the manifest is torn or
// corrupt; the caller stops there. It never panics on arbitrary input —
// the fuzz target pins this.
func decodeManifestRec(b []byte) (rec manifestRec, n int, err error) {
	if len(b) < recHeader {
		return rec, 0, corruptf("manifest: %d trailing bytes, need %d for a record header", len(b), recHeader)
	}
	rec.kind = b[4]
	switch rec.kind {
	case recAdd:
		n = recAddLen
	case recFloor:
		n = recFloorLen
	case recForget:
		n = recForgetLen
	default:
		return rec, 0, corruptf("manifest: unknown record kind %d", rec.kind)
	}
	if len(b) < n {
		return rec, 0, corruptf("manifest: torn record: have %d bytes of %d", len(b), n)
	}
	if got, want := crc32.ChecksumIEEE(b[4:n]), binary.LittleEndian.Uint32(b); got != want {
		return rec, 0, corruptf("manifest: record crc mismatch: %08x != %08x", got, want)
	}
	rec.stream = wire.StreamID(binary.LittleEndian.Uint32(b[5:]))
	switch rec.kind {
	case recAdd:
		rec.ref.Codec = codec.ID(b[9])
		rec.ref.FirstSeq = binary.LittleEndian.Uint64(b[10:])
		rec.ref.LastSeq = binary.LittleEndian.Uint64(b[18:])
		rec.ref.Count = int32(binary.LittleEndian.Uint32(b[26:]))
		rec.ref.RawBytes = int64(binary.LittleEndian.Uint64(b[30:]))
		rec.ref.LastUnix = int64(binary.LittleEndian.Uint64(b[38:]))
		rec.off = int64(binary.LittleEndian.Uint64(b[46:]))
		rec.ref.Bytes = int64(binary.LittleEndian.Uint32(b[54:]))
		rec.dataCRC = binary.LittleEndian.Uint32(b[58:])
		if rec.ref.Count < 0 || rec.ref.RawBytes < 0 || rec.off < 0 ||
			rec.ref.LastSeq < rec.ref.FirstSeq {
			return rec, 0, corruptf("manifest: add record fields out of range")
		}
	case recFloor:
		rec.floor = binary.LittleEndian.Uint64(b[9:])
	}
	return rec, n, nil
}

// FS is the filesystem reference backend: sealed blocks land verbatim
// (the codec package's block wire format) in per-shard append-only
// segment files, and every mutation appends a CRC-framed record to the
// shard's manifest. The manifest is the single source of truth: a block
// exists iff its add-record is intact and its segment extent is whole,
// so recovery after a crash mid-spill truncates to the last complete
// block — a torn segment or manifest tail can only lose the newest
// blocks, never tear a hole in the middle of history.
//
// Writes go to the OS page cache (no fsync per block): the archive
// tier's durability is crash-of-process, not power-loss, which matches
// its role as spill space for a live middleware. Deletions are logical
// (manifest tombstones); segment space is reclaimed only by removing
// the directory. Compaction is future work.
type FS struct {
	dir string

	mu      sync.Mutex
	shards  [FSShards]fsShard
	streams map[wire.StreamID]*fsStream
}

type fsShard struct {
	log     *os.File
	seg     *os.File
	segOff  int64  // committed append offset
	scratch []byte // manifest record build buffer, reused per append
}

type fsStream struct {
	floor uint64
	refs  []fsRef // ascending by LastSeq
}

type fsRef struct {
	Ref
	off     int64
	dataCRC uint32
}

func fsShardOf(stream wire.StreamID) int { return stream.Sensor().Shard(FSShards) }

func segName(i int) string { return fmt.Sprintf("shard-%02d.seg", i) }
func logName(i int) string { return fmt.Sprintf("shard-%02d.log", i) }

// OpenFS opens (creating if needed) the archive directory and rebuilds
// the block index from the manifests, dropping any torn tail. The same
// directory must not be opened by two FS values at once.
func OpenFS(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	f := &FS{dir: dir, streams: make(map[wire.StreamID]*fsStream)}
	for i := 0; i < FSShards; i++ {
		seg, err := os.OpenFile(filepath.Join(dir, segName(i)), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("archive: %w", err)
		}
		log, err := os.OpenFile(filepath.Join(dir, logName(i)), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			seg.Close()
			f.Close()
			return nil, fmt.Errorf("archive: %w", err)
		}
		sh := &f.shards[i]
		sh.seg, sh.log = seg, log
		st, err := seg.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("archive: %w", err)
		}
		segSize := st.Size()
		raw, err := os.ReadFile(filepath.Join(dir, logName(i)))
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("archive: %w", err)
		}
		applied, _, tornRefs := replayManifest(raw, segSize, f.streams)
		// Future appends continue after the manifest's committed extent;
		// bytes past it (a torn block write) are dead and overwritten.
		sh.segOff = applied
		// A torn tail must be healed now, not just skipped: later appends
		// reuse the dead segment extent, and a torn add-record left in the
		// manifest would resurrect at the next replay once new bytes land
		// under its extent. Rewrite the shard's manifest from the
		// recovered index (torn records compacted away, torn trailing
		// bytes truncated) so recovery is idempotent.
		if torn := tornRefs > 0 || intactPrefix(raw) < len(raw); torn {
			if err := f.rewriteLog(i); err != nil {
				f.Close()
				return nil, err
			}
		}
		if _, err := log.Seek(0, 2); err != nil {
			f.Close()
			return nil, fmt.Errorf("archive: %w", err)
		}
	}
	return f, nil
}

// intactPrefix returns how many leading bytes of a manifest decode as
// complete records; anything past that is a torn or corrupt tail.
func intactPrefix(raw []byte) int {
	consumed := 0
	for consumed < len(raw) {
		_, n, err := decodeManifestRec(raw[consumed:])
		if err != nil {
			break
		}
		consumed += n
	}
	return consumed
}

// rewriteLog replaces shard i's manifest with a compact re-encoding of
// the recovered in-memory index: one floor record per stream holding a
// floor, then its surviving add-records. Called during OpenFS recovery
// with the lock not yet needed (the FS is not shared yet).
func (f *FS) rewriteLog(i int) error {
	sh := &f.shards[i]
	var buf []byte
	ids := make([]wire.StreamID, 0, len(f.streams))
	for id := range f.streams {
		if fsShardOf(id) == i {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		fs := f.streams[id]
		if fs.floor > 0 {
			rec := manifestRec{kind: recFloor, stream: id, floor: fs.floor}
			buf = appendManifestRec(buf, &rec)
		}
		for j := range fs.refs {
			rec := manifestRec{
				kind:    recAdd,
				stream:  id,
				ref:     fs.refs[j].Ref,
				off:     fs.refs[j].off,
				dataCRC: fs.refs[j].dataCRC,
			}
			buf = appendManifestRec(buf, &rec)
		}
	}
	if err := sh.log.Truncate(0); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if len(buf) > 0 {
		if _, err := sh.log.WriteAt(buf, 0); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
	}
	return nil
}

// replayManifest applies one shard's manifest bytes onto streams,
// validating each add-record's extent against segSize. It returns the
// committed segment extent (the end of the last intact block), the
// number of records applied, and the number of refs dropped for torn
// segment extents. A record that fails to decode ends the replay — the
// tail is torn.
func replayManifest(raw []byte, segSize int64, streams map[wire.StreamID]*fsStream) (committed int64, records, tornRefs int) {
	for len(raw) > 0 {
		rec, n, err := decodeManifestRec(raw)
		if err != nil {
			break
		}
		raw = raw[n:]
		records++
		switch rec.kind {
		case recAdd:
			if rec.off+rec.ref.Bytes > segSize {
				tornRefs++
				continue
			}
			fs, ok := streams[rec.stream]
			if !ok {
				fs = &fsStream{}
				streams[rec.stream] = fs
			}
			if rec.ref.LastSeq < fs.floor {
				continue // resurrected write racing a delete; logically dead
			}
			fs.refs = append(fs.refs, fsRef{Ref: rec.ref, off: rec.off, dataCRC: rec.dataCRC})
			if end := rec.off + rec.ref.Bytes; end > committed {
				committed = end
			}
		case recFloor:
			fs, ok := streams[rec.stream]
			if !ok {
				fs = &fsStream{}
				streams[rec.stream] = fs
			}
			if rec.floor > fs.floor {
				fs.floor = rec.floor
			}
			k := 0
			for k < len(fs.refs) && fs.refs[k].LastSeq < fs.floor {
				k++
			}
			if k > 0 {
				fs.refs = append(fs.refs[:0], fs.refs[k:]...)
			}
		case recForget:
			delete(streams, rec.stream)
		}
	}
	return committed, records, tornRefs
}

// Close releases the backend's file handles. A Store using this backend
// must be closed first.
func (f *FS) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var first error
	for i := range f.shards {
		sh := &f.shards[i]
		for _, c := range []*os.File{sh.seg, sh.log} {
			if c != nil {
				if err := c.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		sh.seg, sh.log = nil, nil
	}
	return first
}

func (f *FS) stream(id wire.StreamID) *fsStream {
	fs, ok := f.streams[id]
	if !ok {
		fs = &fsStream{}
		f.streams[id] = fs
	}
	return fs
}

// Append implements Backend: block bytes first (so a crash between the
// two writes leaves an unreferenced extent, not a dangling ref), then
// the CRC-framed add-record.
func (f *FS) Append(stream wire.StreamID, ref Ref, data []byte) error {
	if int64(len(data)) != ref.Bytes {
		return fmt.Errorf("archive: ref says %d bytes, block has %d", ref.Bytes, len(data))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	sh := &f.shards[fsShardOf(stream)]
	if sh.seg == nil {
		return errors.New("archive: backend closed")
	}
	off := sh.segOff
	if _, err := sh.seg.WriteAt(data, off); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	rec := manifestRec{
		kind:    recAdd,
		stream:  stream,
		ref:     ref,
		off:     off,
		dataCRC: crc32.ChecksumIEEE(data),
	}
	sh.scratch = appendManifestRec(sh.scratch[:0], &rec)
	if _, err := sh.log.Write(sh.scratch); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	sh.segOff = off + int64(len(data))
	fs := f.stream(stream)
	fs.refs = append(fs.refs, fsRef{Ref: ref, off: off, dataCRC: rec.dataCRC})
	return nil
}

// Open implements Backend.
func (f *FS) Open(dst []byte, stream wire.StreamID, lastSeq uint64) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs, ok := f.streams[stream]
	if !ok {
		return dst, ErrNotFound
	}
	i := sort.Search(len(fs.refs), func(i int) bool { return fs.refs[i].LastSeq >= lastSeq })
	if i >= len(fs.refs) || fs.refs[i].LastSeq != lastSeq {
		return dst, ErrNotFound
	}
	r := &fs.refs[i]
	sh := &f.shards[fsShardOf(stream)]
	if sh.seg == nil {
		return dst, errors.New("archive: backend closed")
	}
	n := len(dst)
	need := n + int(r.Bytes)
	if cap(dst) < need {
		grown := make([]byte, need)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:need]
	}
	if _, err := sh.seg.ReadAt(dst[n:need], r.off); err != nil {
		return dst[:n], corruptf("segment read: %v", err)
	}
	if got := crc32.ChecksumIEEE(dst[n:need]); got != r.dataCRC {
		return dst[:n], corruptf("block %d/%d data crc mismatch: %08x != %08x", stream, lastSeq, got, r.dataCRC)
	}
	return dst, nil
}

// List implements Backend.
func (f *FS) List(stream wire.StreamID) (StreamState, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs, ok := f.streams[stream]
	if !ok {
		return StreamState{Stream: stream}, nil
	}
	return StreamState{Stream: stream, Floor: fs.floor, Refs: plainRefs(fs.refs)}, nil
}

func plainRefs(refs []fsRef) []Ref {
	if len(refs) == 0 {
		return nil
	}
	out := make([]Ref, len(refs))
	for i := range refs {
		out[i] = refs[i].Ref
	}
	return out
}

// Streams implements Backend, visiting in stream-id order.
func (f *FS) Streams(fn func(StreamState) error) error {
	f.mu.Lock()
	ids := make([]wire.StreamID, 0, len(f.streams))
	for id := range f.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	states := make([]StreamState, 0, len(ids))
	for _, id := range ids {
		fs := f.streams[id]
		states = append(states, StreamState{Stream: id, Floor: fs.floor, Refs: plainRefs(fs.refs)})
	}
	f.mu.Unlock()
	for _, st := range states {
		if err := fn(st); err != nil {
			return err
		}
	}
	return nil
}

// DeleteBefore implements Backend.
func (f *FS) DeleteBefore(stream wire.StreamID, upto uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh := &f.shards[fsShardOf(stream)]
	if sh.log == nil {
		return errors.New("archive: backend closed")
	}
	rec := manifestRec{kind: recFloor, stream: stream, floor: upto}
	sh.scratch = appendManifestRec(sh.scratch[:0], &rec)
	if _, err := sh.log.Write(sh.scratch); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	fs := f.stream(stream)
	if upto > fs.floor {
		fs.floor = upto
	}
	k := 0
	for k < len(fs.refs) && fs.refs[k].LastSeq < fs.floor {
		k++
	}
	if k > 0 {
		fs.refs = append(fs.refs[:0], fs.refs[k:]...)
	}
	return nil
}

// Forget implements Backend.
func (f *FS) Forget(stream wire.StreamID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh := &f.shards[fsShardOf(stream)]
	if sh.log == nil {
		return errors.New("archive: backend closed")
	}
	rec := manifestRec{kind: recForget, stream: stream}
	sh.scratch = appendManifestRec(sh.scratch[:0], &rec)
	if _, err := sh.log.Write(sh.scratch); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	delete(f.streams, stream)
	return nil
}

// ShardReport describes one on-disk shard for inspection tooling.
type ShardReport struct {
	Index        int
	Records      int   // manifest records that decoded intact
	TornManifest bool  // manifest ends mid-record (crash during a manifest write)
	TornRefs     int   // intact add-records whose block extent runs past the segment end
	SegBytes     int64 // segment file size on disk
	Committed    int64 // extent covered by intact blocks
}

// StreamReport summarises one stream's archived state for inspection.
type StreamReport struct {
	Stream   wire.StreamID
	Floor    uint64
	Blocks   int
	FirstSeq uint64
	LastSeq  uint64
	Count    int64
	RawBytes int64
	Bytes    int64
}

// Report is a read-only scan of an archive directory.
type Report struct {
	Shards  []ShardReport
	Streams []StreamReport
}

// ScanFS reads an archive directory without opening it for writing:
// the manifest/segment structure per shard (including torn tails) and
// the per-stream archived ranges. Missing files scan as empty shards.
func ScanFS(dir string) (Report, error) {
	var rep Report
	streams := make(map[wire.StreamID]*fsStream)
	for i := 0; i < FSShards; i++ {
		sr := ShardReport{Index: i}
		var segSize int64
		if st, err := os.Stat(filepath.Join(dir, segName(i))); err == nil {
			segSize = st.Size()
		} else if !errors.Is(err, os.ErrNotExist) {
			return rep, fmt.Errorf("archive: %w", err)
		}
		sr.SegBytes = segSize
		raw, err := os.ReadFile(filepath.Join(dir, logName(i)))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return rep, fmt.Errorf("archive: %w", err)
		}
		consumed := 0
		for consumed < len(raw) {
			if _, n, err := decodeManifestRec(raw[consumed:]); err == nil {
				consumed += n
			} else {
				sr.TornManifest = true
				break
			}
		}
		sr.Committed, sr.Records, sr.TornRefs = replayManifest(raw, segSize, streams)
		rep.Shards = append(rep.Shards, sr)
	}
	ids := make([]wire.StreamID, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fs := streams[id]
		sr := StreamReport{Stream: id, Floor: fs.floor, Blocks: len(fs.refs)}
		if len(fs.refs) > 0 {
			sr.FirstSeq = fs.refs[0].FirstSeq
			sr.LastSeq = fs.refs[len(fs.refs)-1].LastSeq
		}
		for i := range fs.refs {
			sr.Count += int64(fs.refs[i].Count)
			sr.RawBytes += fs.refs[i].RawBytes
			sr.Bytes += fs.refs[i].Bytes
		}
		rep.Streams = append(rep.Streams, sr)
	}
	return rep, nil
}

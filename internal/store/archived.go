package store

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	mpmc "github.com/garnet-middleware/garnet/internal/ring"
	"github.com/garnet-middleware/garnet/internal/store/archive"
	"github.com/garnet-middleware/garnet/internal/store/codec"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// DefaultArchiveQueue is the default per-shard spill queue capacity.
const DefaultArchiveQueue = 256

// archiveState is the store-wide archiver: the backend, the retention
// policy, one bounded spill queue and parked drainer per shard, and the
// write/read latency histograms Stats snapshots.
type archiveState struct {
	backend  archive.Backend
	syncMode bool
	maxAge   time.Duration
	maxBytes int64

	queues  []*mpmc.Ring[wire.StreamID]
	waiters []*mpmc.Waiter
	closed  atomic.Bool
	wg      sync.WaitGroup

	writeLat metrics.Histogram
	readLat  metrics.Histogram
}

// archStream is one stream's archive-tier state, held in a per-shard
// side map rather than on the ring so the 144-byte per-stream idle
// footprint only grows for streams that actually spilled. All sequences
// in refs precede all in pending precede all in the cold tier; entries
// below floor are logically deleted even where a straddling block still
// physically holds them.
type archStream struct {
	// refs are the durably archived blocks, ascending. FirstSeq, Count
	// and RawBytes are live bookkeeping: retention cuts advance them
	// past a block's dead prefix without rewriting the immutable block.
	refs []archive.Ref
	// pending blocks left the cold tier but have not been committed by
	// the archiver yet; their entries still count as retained. FIFO.
	pending []coldBlock
	// floor is the retention cut: entries below it are dropped on
	// decode. Mirrors the backend's persisted floor.
	floor uint64
	// inflight is the lastSeq of the pending head the archiver is
	// writing right now (0 when none): droppers must not recycle that
	// block's buffer, and the archiver reconciles against it on return.
	inflight uint64
}

// lastSeqLocked returns the highest archived or spill-pending sequence,
// 0 when the tier is empty. Caller holds the shard mutex.
func (as *archStream) lastSeqLocked() uint64 {
	if n := len(as.pending); n > 0 {
		return as.pending[n-1].lastSeq
	}
	if n := len(as.refs); n > 0 {
		return as.refs[n-1].LastSeq
	}
	return 0
}

func refFromBlock(b *coldBlock) archive.Ref {
	return archive.Ref{
		Codec:    b.codec,
		FirstSeq: b.firstSeq,
		LastSeq:  b.lastSeq,
		Count:    int32(b.count),
		RawBytes: b.rawBytes,
		Bytes:    int64(len(b.data)),
		LastUnix: b.lastUnix,
	}
}

// initArchive wires the archive tier into a freshly constructed store:
// recovers the in-memory index from the backend's manifests and starts
// the per-shard archiver goroutines (unless Options.ArchiveSync).
// Called from New before the store is shared, so no locks are held.
func (s *Store) initArchive(opts Options) {
	a := &archiveState{
		backend:  opts.Archive,
		syncMode: opts.ArchiveSync,
		maxAge:   opts.ArchiveMaxAge,
		maxBytes: opts.ArchiveMaxBytes,
	}
	s.arch = a
	for _, sh := range s.shards {
		sh.archived = make(map[wire.StreamID]*archStream)
	}
	s.recoverArchive()
	if a.syncMode {
		return
	}
	qcap := opts.ArchiveQueue
	if qcap <= 0 {
		qcap = DefaultArchiveQueue
	}
	a.queues = make([]*mpmc.Ring[wire.StreamID], s.shardCnt)
	a.waiters = make([]*mpmc.Waiter, s.shardCnt)
	for i := 0; i < s.shardCnt; i++ {
		a.queues[i] = mpmc.New[wire.StreamID](qcap)
		a.waiters[i] = mpmc.NewWaiter()
		a.wg.Add(1)
		go s.archiverLoop(i)
	}
}

// recoverArchive rebuilds the per-shard archive index from the backend:
// a restarted deployment serves archived history for streams it has
// never seen live. Blocks the persisted floor cuts into are decoded
// once to recover exact live counts.
func (s *Store) recoverArchive() {
	err := s.arch.backend.Streams(func(ss archive.StreamState) error {
		sh := s.shardFor(ss.Stream)
		as := &archStream{floor: ss.Floor}
		for _, ref := range ss.Refs {
			if ref.LastSeq < ss.Floor {
				continue
			}
			if ref.FirstSeq < ss.Floor {
				adj, ok := s.recoverCutRef(ss.Stream, ref, ss.Floor)
				if !ok {
					continue
				}
				ref = adj
			}
			as.refs = append(as.refs, ref)
			sh.archivedBlocks++
			sh.archivedMsgs += int64(ref.Count)
			sh.archivedBytes += ref.Bytes
			sh.archivedRaw += ref.RawBytes
			sh.archiveRecovered += int64(ref.Count)
		}
		if len(as.refs) > 0 || as.floor > 0 {
			sh.archived[ss.Stream] = as
		}
		return nil
	})
	if err != nil {
		panic("store: archive recovery: " + err.Error())
	}
}

// recoverCutRef decodes one floor-straddling block at recovery and
// returns its ref adjusted to the live suffix; ok is false when the
// block fails to open or decode (it is dropped rather than trusted).
func (s *Store) recoverCutRef(id wire.StreamID, ref archive.Ref, floor uint64) (archive.Ref, bool) {
	c, ok := codec.ByID(ref.Codec)
	if !ok {
		return ref, false
	}
	ds := decodePool.Get().(*decodeScratch)
	defer decodePool.Put(ds)
	var err error
	ds.buf, err = s.arch.backend.Open(ds.buf[:0], id, ref.LastSeq)
	if err != nil {
		return ref, false
	}
	entries, err := c.Decode(ds.entries[:0], id, ds.buf, &ds.sc)
	ds.entries = entries
	if err != nil {
		return ref, false
	}
	var count int32
	var raw int64
	first := uint64(0)
	for i := range entries {
		if entries[i].StoreSeq < floor {
			continue
		}
		if first == 0 {
			first = entries[i].StoreSeq
		}
		count++
		raw += int64(len(entries[i].Msg.Payload))
	}
	if count == 0 {
		return ref, false
	}
	ref.FirstSeq, ref.Count, ref.RawBytes = first, count, raw
	return ref, true
}

// spillOldestColdLocked moves the oldest cold block into the archive
// tier instead of dropping it: synchronously under Options.ArchiveSync,
// otherwise onto the stream's pending list with a task enqueued for the
// shard's archiver. A full queue falls back to a synchronous drain
// (counted in Stats.ArchiveSyncSpills) so backpressure never silently
// drops history. Caller holds mu.
func (s *Store) spillOldestColdLocked(sh *shard, r *ring, id wire.StreamID) {
	b := r.cold[0]
	r.coldBytes -= int64(len(b.data))
	r.coldRaw -= b.rawBytes
	r.coldCount -= int32(b.count)
	n := len(r.cold)
	copy(r.cold, r.cold[1:])
	r.cold[n-1] = coldBlock{}
	r.cold = r.cold[:n-1]

	as, ok := sh.archived[id]
	if !ok {
		as = &archStream{}
		sh.archived[id] = as
	}
	if s.arch.syncMode {
		s.archiveBlockLocked(sh, as, id, b)
		return
	}
	as.pending = append(as.pending, b)
	sh.pendingBlocks++
	if s.arch.queues[sh.idx].TryEnqueue(id) {
		s.arch.waiters[sh.idx].Wake()
		return
	}
	sh.spillSync++
	s.drainPendingLocked(sh, as, id)
}

// drainPendingLocked archives the stream's pending blocks inline,
// oldest first, stopping at a block the async archiver has in flight.
// Caller holds mu.
func (s *Store) drainPendingLocked(sh *shard, as *archStream, id wire.StreamID) {
	for len(as.pending) > 0 && as.inflight != as.pending[0].lastSeq {
		b := as.pending[0]
		dropPendingSlot(as)
		sh.pendingBlocks--
		s.archiveBlockLocked(sh, as, id, b)
	}
}

// dropPendingSlot removes the pending head, keeping the slice capacity.
func dropPendingSlot(as *archStream) {
	n := len(as.pending)
	copy(as.pending, as.pending[1:])
	as.pending[n-1] = coldBlock{}
	as.pending = as.pending[:n-1]
}

// archiveBlockLocked appends one block to the backend and commits it,
// all under the shard mutex (the synchronous paths: ArchiveSync mode,
// queue-full fallback, Close's final drain). Caller holds mu.
func (s *Store) archiveBlockLocked(sh *shard, as *archStream, id wire.StreamID, b coldBlock) {
	ref := refFromBlock(&b)
	start := time.Now()
	err := s.arch.backend.Append(id, ref, b.data)
	s.arch.writeLat.ObserveDuration(time.Since(start))
	s.commitSpilledLocked(sh, as, id, b, err)
}

// commitSpilledLocked settles one block whose backend append returned:
// on success its entries move from the retained gauges to the archived
// gauges and its ref joins the stream's index; on failure the entries
// are lost and credited to Stats.ArchiveFailed so the conservation
// identity still closes. Either way the block's buffer is recycled.
// Caller holds mu.
func (s *Store) commitSpilledLocked(sh *shard, as *archStream, id wire.StreamID, b coldBlock, err error) {
	sh.retainedMessages.Add(-int64(b.count))
	sh.retainedBytes.Add(-b.rawBytes)
	if err != nil {
		sh.archiveFailed += int64(b.count)
		sh.recycleBufLocked(b.data)
		return
	}
	as.refs = append(as.refs, refFromBlock(&b))
	sh.archivedBlocks++
	sh.archivedMsgs += int64(b.count)
	sh.archivedBytes += int64(len(b.data))
	sh.archivedRaw += b.rawBytes
	sh.recycleBufLocked(b.data)
	s.enforceArchiveRetentionLocked(sh, as, id, b.lastUnix)
}

// enforceArchiveRetentionLocked applies WithArchiveRetention's bounds
// after a commit: oldest blocks past the per-stream byte budget or the
// age cut (relative to the newest archived entry, so virtual clocks
// stay deterministic) are dropped and the floor persisted. The newest
// block always survives. Caller holds mu.
func (s *Store) enforceArchiveRetentionLocked(sh *shard, as *archStream, id wire.StreamID, nowUnix int64) {
	dropped := false
	if s.arch.maxBytes > 0 {
		var total int64
		for i := range as.refs {
			total += as.refs[i].Bytes
		}
		for len(as.refs) > 1 && total > s.arch.maxBytes {
			total -= as.refs[0].Bytes
			s.dropOldestRefLocked(sh, as, &sh.evictedArchive)
			dropped = true
		}
	}
	if s.arch.maxAge > 0 {
		cut := nowUnix - int64(s.arch.maxAge)
		for len(as.refs) > 1 && as.refs[0].LastUnix < cut {
			s.dropOldestRefLocked(sh, as, &sh.evictedArchive)
			dropped = true
		}
	}
	if dropped {
		if first := as.refs[0].FirstSeq; first > as.floor {
			as.floor = first
		}
		s.arch.backend.DeleteBefore(id, as.floor)
	}
}

// dropOldestRefLocked removes the oldest archived block from the
// in-memory index, crediting its live entries to *reason. The caller is
// responsible for the backend-side delete (one DeleteBefore covers a
// run of drops). Caller holds mu.
func (s *Store) dropOldestRefLocked(sh *shard, as *archStream, reason *int64) {
	ref := as.refs[0]
	sh.archivedBlocks--
	sh.archivedMsgs -= int64(ref.Count)
	sh.archivedBytes -= ref.Bytes
	sh.archivedRaw -= ref.RawBytes
	*reason += int64(ref.Count)
	n := len(as.refs)
	copy(as.refs, as.refs[1:])
	as.refs[n-1] = archive.Ref{}
	as.refs = as.refs[:n-1]
}

// archiverLoop is one shard's spill drainer: it dequeues stream tasks
// and archives each stream's pending blocks, parking on the shard's
// Waiter when the queue runs dry.
func (s *Store) archiverLoop(idx int) {
	defer s.arch.wg.Done()
	q, w := s.arch.queues[idx], s.arch.waiters[idx]
	for {
		if id, ok := q.TryDequeue(); ok {
			s.spillStream(idx, id)
			continue
		}
		if s.arch.closed.Load() {
			return
		}
		w.Prepare()
		if !q.Empty() || s.arch.closed.Load() {
			w.Cancel()
			continue
		}
		w.Wait()
	}
}

// spillStream archives every pending block of one stream, oldest first.
// The backend append runs outside the shard lock; the commit step
// reconciles against whatever EvictTo/Forget did to the pending list in
// the meantime, deleting the durable copy again if the block was
// dropped while in flight.
func (s *Store) spillStream(idx int, id wire.StreamID) {
	sh := s.shards[idx]
	for {
		sh.mu.Lock()
		as := sh.archived[id]
		if as == nil || len(as.pending) == 0 {
			sh.mu.Unlock()
			return
		}
		b := as.pending[0]
		as.inflight = b.lastSeq
		sh.mu.Unlock()

		ref := refFromBlock(&b)
		start := time.Now()
		err := s.arch.backend.Append(id, ref, b.data)
		s.arch.writeLat.ObserveDuration(time.Since(start))

		sh.mu.Lock()
		if cur := sh.archived[id]; cur == as {
			as.inflight = 0
			if len(as.pending) > 0 && as.pending[0].lastSeq == b.lastSeq {
				// Commit with the pending head's live bookkeeping — a
				// concurrent EvictTo may have trimmed its prefix while
				// the original bytes were in flight; the floor hides
				// the dead prefix inside the durable copy.
				live := as.pending[0]
				dropPendingSlot(as)
				sh.pendingBlocks--
				s.commitSpilledLocked(sh, as, id, live, err)
				sh.mu.Unlock()
				continue
			}
		}
		// The block vanished while in flight (EvictTo or Forget): the
		// dropper settled the accounting and skipped the buffer (it was
		// marked in flight), so recycle here and remove the stray
		// durable copy.
		sh.recycleBufLocked(b.data)
		sh.mu.Unlock()
		if err == nil {
			s.arch.backend.DeleteBefore(id, b.lastSeq+1)
		}
	}
}

// Close stops the archiver goroutines and synchronously archives every
// block still pending, so a clean shutdown loses nothing. Idempotent;
// a store without an archive backend has nothing to do. The store must
// not be appended to after Close (reads remain valid).
func (s *Store) Close() {
	if s.arch == nil || s.arch.closed.Swap(true) {
		return
	}
	for _, w := range s.arch.waiters {
		w.Wake()
	}
	s.arch.wg.Wait()
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, as := range sh.archived {
			as.inflight = 0
			s.drainPendingLocked(sh, as, id)
		}
		sh.mu.Unlock()
	}
}

// evictArchiveToLocked applies EvictTo to the archive tier: whole
// archived and pending blocks below upto are dropped (credited to
// *reason), a straddling block is cut by advancing its live bookkeeping
// past the dead prefix, and the floor is persisted. Caller holds mu.
func (s *Store) evictArchiveToLocked(sh *shard, as *archStream, id wire.StreamID, upto uint64, reason *int64) {
	for len(as.refs) > 0 && as.refs[0].LastSeq < upto {
		s.dropOldestRefLocked(sh, as, reason)
	}
	if len(as.refs) > 0 && as.refs[0].FirstSeq < upto {
		s.cutHeadRefLocked(sh, as, id, upto, reason)
	}
	for len(as.pending) > 0 && as.pending[0].lastSeq < upto {
		s.dropPendingHeadLocked(sh, as, reason)
	}
	if len(as.pending) > 0 && as.pending[0].firstSeq < upto {
		s.cutPendingHeadLocked(sh, as, upto, reason)
	}
	if upto > as.floor {
		as.floor = upto
		s.arch.backend.DeleteBefore(id, upto)
	}
}

// dropPendingHeadLocked drops the whole pending head block, crediting
// its entries (still retained) to *reason. An in-flight block's buffer
// stays with the archiver, which recycles it on return. Caller holds mu.
func (s *Store) dropPendingHeadLocked(sh *shard, as *archStream, reason *int64) {
	b := as.pending[0]
	sh.retainedMessages.Add(-int64(b.count))
	sh.retainedBytes.Add(-b.rawBytes)
	*reason += int64(b.count)
	if as.inflight != b.lastSeq {
		sh.recycleBufLocked(b.data)
	}
	dropPendingSlot(as)
	sh.pendingBlocks--
}

// cutHeadRefLocked trims the dead prefix [FirstSeq, upto) off the
// oldest archived block: the block is decoded once to count exactly
// what the cut drops, then only the bookkeeping advances — the durable
// bytes are immutable and the floor hides the prefix. A block that
// fails to decode is dropped whole (over-evicting, but exactly
// accounted). Caller holds mu.
func (s *Store) cutHeadRefLocked(sh *shard, as *archStream, id wire.StreamID, upto uint64, reason *int64) {
	ref := &as.refs[0]
	c, ok := codec.ByID(ref.Codec)
	if !ok {
		s.dropOldestRefLocked(sh, as, reason)
		return
	}
	ds := decodePool.Get().(*decodeScratch)
	var entries []filtering.Delivery
	var err error
	ds.buf, err = s.arch.backend.Open(ds.buf[:0], id, ref.LastSeq)
	if err == nil {
		entries, err = c.Decode(ds.entries[:0], id, ds.buf, &ds.sc)
		ds.entries = entries
	}
	if err != nil {
		decodePool.Put(ds)
		s.dropOldestRefLocked(sh, as, reason)
		return
	}
	cut, raw, firstLive := cutPrefix(entries, ref.FirstSeq, upto)
	decodePool.Put(ds)
	if cut == 0 {
		return
	}
	if firstLive == 0 {
		s.dropOldestRefLocked(sh, as, reason)
		return
	}
	ref.FirstSeq = firstLive
	ref.Count -= int32(cut)
	ref.RawBytes -= raw
	sh.archivedMsgs -= int64(cut)
	sh.archivedRaw -= raw
	*reason += int64(cut)
}

// cutPendingHeadLocked is cutHeadRefLocked for the pending head, whose
// bytes are still in memory. Caller holds mu.
func (s *Store) cutPendingHeadLocked(sh *shard, as *archStream, upto uint64, reason *int64) {
	b := &as.pending[0]
	c, ok := codec.ByID(b.codec)
	if !ok {
		s.dropPendingHeadLocked(sh, as, reason)
		return
	}
	ds := decodePool.Get().(*decodeScratch)
	entries, err := c.Decode(ds.entries[:0], 0, b.data, &ds.sc)
	ds.entries = entries
	if err != nil {
		decodePool.Put(ds)
		s.dropPendingHeadLocked(sh, as, reason)
		return
	}
	cut, raw, firstLive := cutPrefix(entries, b.firstSeq, upto)
	decodePool.Put(ds)
	if cut == 0 {
		return
	}
	if firstLive == 0 {
		s.dropPendingHeadLocked(sh, as, reason)
		return
	}
	b.firstSeq = firstLive
	b.count -= cut
	b.rawBytes -= raw
	sh.retainedMessages.Add(-int64(cut))
	sh.retainedBytes.Add(-raw)
	*reason += int64(cut)
}

// cutPrefix counts the entries a cut at upto drops from a decoded
// block whose live bookkeeping starts at first: how many live entries
// fall in [first, upto), their payload bytes, and the sequence of the
// first survivor (0 when none survive).
func cutPrefix(entries []filtering.Delivery, first, upto uint64) (cut int, raw int64, firstLive uint64) {
	for i := range entries {
		seq := entries[i].StoreSeq
		if seq < first {
			continue
		}
		if seq >= upto {
			firstLive = seq
			break
		}
		cut++
		raw += int64(len(entries[i].Msg.Payload))
	}
	return cut, raw, firstLive
}

// forgetArchiveLocked drops the stream's whole archive tier — durable
// blocks, pending spills and the floor — crediting every live entry to
// *reason, and removes the backend's state. An in-flight block's buffer
// is left to the archiver. Returns the entries dropped. Caller holds mu.
func (s *Store) forgetArchiveLocked(sh *shard, as *archStream, id wire.StreamID, reason *int64) int {
	before := *reason
	for len(as.refs) > 0 {
		s.dropOldestRefLocked(sh, as, reason)
	}
	for len(as.pending) > 0 {
		s.dropPendingHeadLocked(sh, as, reason)
	}
	delete(sh.archived, id)
	s.arch.backend.Forget(id)
	return int(*reason - before)
}

// visitArchivedBlockLocked opens and decodes one archived block and
// visits its live entries within [from, to], observing the read
// latency. A block that fails integrity checks is skipped — recovery
// already dropped torn tails, so this is the defensive posture
// visitColdLocked takes, not an expected path. Caller holds mu.
func (s *Store) visitArchivedBlockLocked(sh *shard, id wire.StreamID, ref *archive.Ref, from, to uint64, fn func(d filtering.Delivery) bool) bool {
	c, ok := codec.ByID(ref.Codec)
	if !ok {
		return true
	}
	ds := decodePool.Get().(*decodeScratch)
	var entries []filtering.Delivery
	start := time.Now()
	var err error
	ds.buf, err = s.arch.backend.Open(ds.buf[:0], id, ref.LastSeq)
	if err == nil {
		entries, err = c.Decode(ds.entries[:0], id, ds.buf, &ds.sc)
		ds.entries = entries
	}
	s.arch.readLat.ObserveDuration(time.Since(start))
	cont := true
	if err == nil {
		sh.archiveReadMsgs += int64(len(entries))
		lo := from
		if ref.FirstSeq > lo {
			lo = ref.FirstSeq
		}
		for i := range entries {
			if entries[i].StoreSeq < lo {
				continue
			}
			if entries[i].StoreSeq > to {
				break
			}
			if !fn(entries[i]) {
				cont = false
				break
			}
		}
	}
	decodePool.Put(ds)
	return cont
}

// visitArchiveLocked stitches the stream's archive tier — durable
// blocks then pending spills, all sequences ascending — into a read
// of [from, to]. Caller holds mu.
func (s *Store) visitArchiveLocked(sh *shard, as *archStream, id wire.StreamID, from, to uint64, fn func(d filtering.Delivery) bool) bool {
	for i := range as.refs {
		ref := &as.refs[i]
		if ref.LastSeq < from {
			continue
		}
		if ref.FirstSeq > to {
			return true
		}
		if !s.visitArchivedBlockLocked(sh, id, ref, from, to, fn) {
			return false
		}
	}
	for i := range as.pending {
		b := &as.pending[i]
		if b.lastSeq < from {
			continue
		}
		if b.firstSeq > to {
			return true
		}
		lo := from
		if b.firstSeq > lo {
			lo = b.firstSeq
		}
		if !visitColdLocked(b, id, lo, to, fn) {
			return false
		}
	}
	return true
}

package store

import (
	"testing"
	"unsafe"
)

// TestRingFootprint pins the per-stream header size. One ring exists for
// every stream the store has ever seen, so a field added carelessly (or
// a reorder that reopens padding holes) taxes every sensor in a
// million-sensor deployment. 144 bytes is a Go allocator size class;
// crossing it wastes a further 16 bytes per stream invisibly.
func TestRingFootprint(t *testing.T) {
	if got := unsafe.Sizeof(ring{}); got > 144 {
		t.Fatalf("ring is %d bytes, budget 144 — repack before growing it", got)
	}
}

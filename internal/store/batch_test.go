package store

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// appendPlan builds a deterministic randomised retention schedule across
// several sensors: mostly in-order sequences with jumps (gaps), replays
// (late fills / idempotent duplicates) and enough volume to trip the
// count/bytes eviction bounds and wire-sequence unwrap.
func appendPlan(seed int64, sensors, msgs int) []filtering.Delivery {
	rng := rand.New(rand.NewSource(seed))
	heads := make(map[wire.StreamID]int)
	plan := make([]filtering.Delivery, 0, msgs)
	for i := 0; i < msgs; i++ {
		id := wire.MustStreamID(wire.SensorID(rng.Intn(sensors)+1), wire.StreamIndex(rng.Intn(2)))
		head := heads[id]
		switch rng.Intn(5) {
		case 0: // jump ahead
			head += rng.Intn(9) + 2
		case 1: // replay something recent
			head -= rng.Intn(20)
		default: // in order
			head++
		}
		if head < 0 {
			head = 0
		}
		heads[id] = head
		payload := make([]byte, rng.Intn(24)+1)
		payload[0] = byte(head)
		plan = append(plan, del(id, wire.Seq(head), epoch.Add(time.Duration(i)*time.Millisecond), payload))
	}
	return plan
}

// TestAppendBatchMatchesSerialProperty pins AppendBatch to serial Append:
// the same delivery schedule fed through randomized batch splits must
// leave identical retained contents (Range over the full window per
// stream), identical per-stream and aggregate stats, and identical
// StoreSeq assignments.
func TestAppendBatchMatchesSerialProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		plan := appendPlan(seed, 7, 2000)
		type snap struct {
			contents map[wire.StreamID][]filtering.Delivery
			stream   map[wire.StreamID]StreamStats
			stats    Stats
		}
		snapshot := func(s *Store) snap {
			sn := snap{
				contents: make(map[wire.StreamID][]filtering.Delivery),
				stream:   make(map[wire.StreamID]StreamStats),
			}
			for _, id := range s.Streams() {
				sn.contents[id] = s.Range(id, 0, ^uint64(0))
				st, _ := s.StreamStats(id)
				sn.stream[id] = st
			}
			sn.stats = s.Stats()
			return sn
		}
		opts := Options{MaxMessages: 48, MaxBytes: 640}

		serial := New(opts)
		exts := make([]uint64, len(plan))
		for i, d := range plan {
			exts[i] = serial.Append(d)
		}

		batched := New(opts)
		rng := rand.New(rand.NewSource(seed * 131))
		ds := append([]filtering.Delivery(nil), plan...)
		for off := 0; off < len(ds); {
			n := rng.Intn(65) + 1
			if n > len(ds)-off {
				n = len(ds) - off
			}
			batched.AppendBatch(ds[off : off+n])
			off += n
		}
		for i := range ds {
			if ds[i].StoreSeq != exts[i] {
				t.Fatalf("seed %d: delivery %d stamped StoreSeq %d, serial assigned %d",
					seed, i, ds[i].StoreSeq, exts[i])
			}
		}
		ref, got := snapshot(serial), snapshot(batched)
		if !reflect.DeepEqual(ref.contents, got.contents) {
			t.Fatalf("seed %d: batched retained contents diverge from serial", seed)
		}
		if !reflect.DeepEqual(ref.stream, got.stream) {
			t.Fatalf("seed %d: per-stream stats diverge: serial %+v, batched %+v",
				seed, ref.stream, got.stream)
		}
		if ref.stats != got.stats {
			t.Fatalf("seed %d: aggregate stats diverge: serial %+v, batched %+v",
				seed, ref.stats, got.stats)
		}
	}
}

// TestAppendBatchZeroAllocSteadyState pins the batched append path at
// 0 allocs/op once rings and slot buffers are warm.
func TestAppendBatchZeroAllocSteadyState(t *testing.T) {
	s := New(Options{MaxMessages: 128})
	const n = 64
	ds := make([]filtering.Delivery, n)
	payload := make([]byte, 32)
	seq := 0
	fill := func() {
		for i := range ds {
			ds[i] = del(wire.MustStreamID(wire.SensorID(i%8+1), 0), wire.Seq(seq), epoch, payload)
		}
		seq++
	}
	// Warm up: grow each ring to capacity and the slot buffers to the
	// payload working-set size.
	for seq < 256 {
		fill()
		s.AppendBatch(ds)
	}
	allocs := testing.AllocsPerRun(500, func() {
		fill()
		s.AppendBatch(ds)
	})
	if allocs != 0 {
		t.Fatalf("AppendBatch allocates %.1f/op at steady state, want 0", allocs)
	}
}

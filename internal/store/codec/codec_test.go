package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var testStream = wire.MustStreamID(1042, 3)

var testEpoch = time.Unix(1_700_000_000, 0)

// entry builds a block entry with the package invariant the store
// guarantees: the wire sequence is the low 16 bits of the extended one.
func entry(seq uint64, at time.Time, payload []byte) filtering.Delivery {
	return filtering.Delivery{
		Msg: wire.Message{
			Stream:  testStream,
			Seq:     wire.Seq(seq),
			Payload: payload,
		},
		At:       at,
		Receiver: "recv-0",
		RSSI:     -61.5,
		StoreSeq: seq,
	}
}

func f64(v float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func u64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// roundTrip encodes block with c, decodes it, and checks the identity
// contract field by field.
func roundTrip(t *testing.T, c Codec, block []filtering.Delivery) []byte {
	t.Helper()
	enc := c.Encode(nil, block)
	var sc Scratch
	got, err := c.Decode(nil, testStream, enc, &sc)
	if err != nil {
		t.Fatalf("%s: decode: %v", c.Name(), err)
	}
	if len(got) != len(block) {
		t.Fatalf("%s: decoded %d entries, want %d", c.Name(), len(got), len(block))
	}
	for i := range block {
		want, have := &block[i], &got[i]
		if have.StoreSeq != want.StoreSeq {
			t.Fatalf("%s[%d]: StoreSeq %d, want %d", c.Name(), i, have.StoreSeq, want.StoreSeq)
		}
		if have.Msg.Seq != wire.Seq(want.StoreSeq) {
			t.Fatalf("%s[%d]: wire seq %d, want %d", c.Name(), i, have.Msg.Seq, wire.Seq(want.StoreSeq))
		}
		if have.Msg.Stream != testStream {
			t.Fatalf("%s[%d]: stream %v", c.Name(), i, have.Msg.Stream)
		}
		if !have.At.Equal(want.At) {
			t.Fatalf("%s[%d]: At %v, want %v", c.Name(), i, have.At, want.At)
		}
		if have.Receiver != want.Receiver {
			t.Fatalf("%s[%d]: receiver %q, want %q", c.Name(), i, have.Receiver, want.Receiver)
		}
		if math.Float64bits(have.RSSI) != math.Float64bits(want.RSSI) {
			t.Fatalf("%s[%d]: RSSI %v, want %v", c.Name(), i, have.RSSI, want.RSSI)
		}
		if !bytes.Equal(have.Msg.Payload, want.Msg.Payload) {
			t.Fatalf("%s[%d]: payload %x, want %x", c.Name(), i, have.Msg.Payload, want.Msg.Payload)
		}
		if have.Msg.Flags != want.Msg.Flags {
			t.Fatalf("%s[%d]: flags %v, want %v", c.Name(), i, have.Msg.Flags, want.Msg.Flags)
		}
		if want.Msg.Flags.Has(wire.FlagUpdateAck) && have.Msg.AckID != want.Msg.AckID {
			t.Fatalf("%s[%d]: ackID %d, want %d", c.Name(), i, have.Msg.AckID, want.Msg.AckID)
		}
		if want.Msg.Flags.Has(wire.FlagRelayed) && have.Msg.HopCount != want.Msg.HopCount {
			t.Fatalf("%s[%d]: hop %d, want %d", c.Name(), i, have.Msg.HopCount, want.Msg.HopCount)
		}
		if want.Msg.Flags.Has(wire.FlagFused) && have.Msg.FusedCount != want.Msg.FusedCount {
			t.Fatalf("%s[%d]: fused %d, want %d", c.Name(), i, have.Msg.FusedCount, want.Msg.FusedCount)
		}
	}
	return enc
}

func allCodecs() []Codec { return []Codec{Raw, Gorilla, RLE, LZ} }

func testBlocks() map[string][]filtering.Delivery {
	blocks := map[string][]filtering.Delivery{}

	blocks["single"] = []filtering.Delivery{entry(7, testEpoch, []byte("one"))}

	var constant []filtering.Delivery
	for i := 0; i < 64; i++ {
		constant = append(constant, entry(uint64(100+i), testEpoch.Add(time.Duration(i)*time.Second), f64(21.5)))
	}
	blocks["constant-float"] = constant

	var ramp []filtering.Delivery
	for i := 0; i < 64; i++ {
		ramp = append(ramp, entry(uint64(200+i), testEpoch.Add(time.Duration(i)*time.Second), f64(20+0.125*float64(i))))
	}
	blocks["ramp-float"] = ramp

	rng := rand.New(rand.NewSource(1))
	var noisy []filtering.Delivery
	for i := 0; i < 64; i++ {
		noisy = append(noisy, entry(uint64(300+i*3), testEpoch.Add(time.Duration(i*250)*time.Millisecond), f64(20+rng.NormFloat64())))
	}
	blocks["noisy-float-gaps"] = noisy

	var text []filtering.Delivery
	for i := 0; i < 32; i++ {
		text = append(text, entry(uint64(400+i), testEpoch.Add(time.Duration(i)*time.Minute),
			[]byte("temp=21.5C humidity=40% status=nominal battery=ok")))
	}
	blocks["text-repeat"] = text

	var random []filtering.Delivery
	for i := 0; i < 16; i++ {
		p := make([]byte, 5+rng.Intn(40))
		rng.Read(p)
		random = append(random, entry(uint64(500+i), testEpoch.Add(time.Duration(i)*time.Second), p))
	}
	blocks["incompressible"] = random

	blocks["empty-payloads"] = []filtering.Delivery{
		entry(600, testEpoch, nil),
		entry(601, testEpoch.Add(time.Second), []byte{}),
		entry(602, testEpoch.Add(2*time.Second), []byte("x")),
		entry(603, testEpoch.Add(3*time.Second), nil),
	}

	// Extended sequences crossing a 16-bit wire wrap: the derived wire
	// seq must follow the low 16 bits.
	var wrap []filtering.Delivery
	for i := 0; i < 8; i++ {
		wrap = append(wrap, entry(uint64(65530+i*2), testEpoch.Add(time.Duration(i)*time.Second), f64(float64(i))))
	}
	blocks["wire-wrap"] = wrap

	// Timestamps that go backwards (receive-time reordering) and jitter.
	blocks["non-monotonic-ts"] = []filtering.Delivery{
		entry(700, testEpoch, []byte("a")),
		entry(701, testEpoch.Add(-3*time.Second), []byte("b")),
		entry(702, testEpoch.Add(500*time.Nanosecond), []byte("c")),
		entry(703, testEpoch.Add(-time.Hour), []byte("d")),
	}

	multi := []filtering.Delivery{
		entry(800, testEpoch, []byte("p")),
		entry(801, testEpoch.Add(time.Second), []byte("q")),
		entry(802, testEpoch.Add(2*time.Second), []byte("r")),
	}
	multi[1].Receiver = "recv-1"
	multi[2].Receiver = "recv-0"
	blocks["two-receivers"] = multi

	// More receivers than the dictionary holds: the spill path.
	var spill []filtering.Delivery
	for i := 0; i < 12; i++ {
		d := entry(uint64(900+i), testEpoch.Add(time.Duration(i)*time.Second), []byte("s"))
		d.Receiver = "spill-" + string(rune('a'+i))
		spill = append(spill, d)
	}
	blocks["receiver-spill"] = spill

	flagged := []filtering.Delivery{
		entry(1000, testEpoch, []byte("f0")),
		entry(1001, testEpoch.Add(time.Second), []byte("f1")),
		entry(1002, testEpoch.Add(2*time.Second), []byte("f2")),
		entry(1003, testEpoch.Add(3*time.Second), []byte("f3")),
	}
	flagged[0].Msg.Flags = wire.FlagUpdateAck
	flagged[0].Msg.AckID = 0xBEEF
	flagged[1].Msg.Flags = wire.FlagRelayed | wire.FlagFused
	flagged[1].Msg.HopCount = 5
	flagged[1].Msg.FusedCount = 3
	flagged[2].Msg.Flags = wire.FlagEncrypted | wire.FlagLocationAware
	blocks["flag-fields"] = flagged

	nan := []filtering.Delivery{
		entry(1100, testEpoch, f64(1)),
		entry(1101, testEpoch.Add(time.Second), f64(2)),
	}
	nan[0].RSSI = math.NaN()
	nan[1].RSSI = math.Inf(-1)
	blocks["rssi-extremes"] = nan

	// Exercises every Gorilla branch: repeats (xor 0), small drift
	// (window reuse), window changes, >31 leading zeros, full-width XOR.
	blocks["gorilla-branches"] = []filtering.Delivery{
		entry(1200, testEpoch, u64(0)),
		entry(1201, testEpoch.Add(time.Second), u64(0)),
		entry(1202, testEpoch.Add(2*time.Second), u64(1<<40)),
		entry(1203, testEpoch.Add(3*time.Second), u64(1<<40|1<<38)),
		entry(1204, testEpoch.Add(4*time.Second), u64(1<<40|1<<38)),
		entry(1205, testEpoch.Add(5*time.Second), u64(1)),
		entry(1206, testEpoch.Add(6*time.Second), u64(math.MaxUint64)),
		entry(1207, testEpoch.Add(7*time.Second), u64(1<<63)),
		entry(1208, testEpoch.Add(8*time.Second), u64(1<<63|0xFF)),
	}

	return blocks
}

func TestCodecRoundTrip(t *testing.T) {
	for name, block := range testBlocks() {
		for _, c := range allCodecs() {
			t.Run(c.Name()+"/"+name, func(t *testing.T) {
				roundTrip(t, c, block)
			})
		}
	}
}

// TestCodecDecodeAppends checks Decode appends to a non-empty dst and
// stamps the caller's stream, the way the store's read path stitches
// multiple cold blocks into one scratch slice.
func TestCodecDecodeAppends(t *testing.T) {
	block := testBlocks()["ramp-float"]
	enc := Gorilla.Encode(nil, block)
	prefix := []filtering.Delivery{entry(1, testEpoch, []byte("sentinel"))}
	var sc Scratch
	got, err := Gorilla.Decode(prefix, testStream, enc, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1+len(block) {
		t.Fatalf("got %d entries, want %d", len(got), 1+len(block))
	}
	if string(got[0].Msg.Payload) != "sentinel" {
		t.Fatalf("prefix clobbered: %q", got[0].Msg.Payload)
	}
	if got[1].StoreSeq != block[0].StoreSeq {
		t.Fatalf("first appended entry StoreSeq %d", got[1].StoreSeq)
	}
}

// TestCodecScratchReuse checks that a pooled scratch can decode blocks
// back to back without cross-contamination.
func TestCodecScratchReuse(t *testing.T) {
	blocks := testBlocks()
	var sc Scratch
	for _, name := range []string{"text-repeat", "constant-float", "incompressible"} {
		for _, c := range allCodecs() {
			enc := c.Encode(nil, blocks[name])
			got, err := c.Decode(nil, testStream, enc, &sc)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name(), name, err)
			}
			for i := range got {
				if !bytes.Equal(got[i].Msg.Payload, blocks[name][i].Msg.Payload) {
					t.Fatalf("%s/%s[%d]: payload mismatch after reuse", c.Name(), name, i)
				}
			}
		}
	}
}

func TestCodecCompresses(t *testing.T) {
	blocks := testBlocks()
	for _, tc := range []struct {
		codec Codec
		block string
	}{
		{Gorilla, "constant-float"},
		{Gorilla, "ramp-float"},
		{RLE, "constant-float"},
		{LZ, "text-repeat"},
	} {
		enc := len(tc.codec.Encode(nil, blocks[tc.block]))
		rawLen := len(Raw.Encode(nil, blocks[tc.block]))
		if enc >= rawLen {
			t.Errorf("%s on %s: %d bytes, raw is %d", tc.codec.Name(), tc.block, enc, rawLen)
		}
	}
}

// TestCodecDecodeCorrupt feeds every truncation of valid encodings and a
// set of mutations to every codec: decoders must return ErrCorrupt (or
// succeed, for mutations that stay well-formed) and never panic.
func TestCodecDecodeCorrupt(t *testing.T) {
	blocks := testBlocks()
	var sc Scratch
	for _, c := range allCodecs() {
		for name, block := range blocks {
			enc := c.Encode(nil, block)
			for cut := 0; cut < len(enc); cut++ {
				if _, err := c.Decode(nil, testStream, enc[:cut], &sc); err != nil && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("%s/%s cut=%d: non-corrupt error %v", c.Name(), name, cut, err)
				}
			}
			rng := rand.New(rand.NewSource(int64(len(enc))))
			for trial := 0; trial < 100; trial++ {
				mut := append([]byte(nil), enc...)
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
				if _, err := c.Decode(nil, testStream, mut, &sc); err != nil && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("%s/%s mutation: non-corrupt error %v", c.Name(), name, err)
				}
			}
		}
		if _, err := c.Decode(nil, testStream, nil, &sc); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: empty input: %v", c.Name(), err)
		}
	}
}

func TestChoose(t *testing.T) {
	blocks := testBlocks()
	for _, tc := range []struct {
		block string
		want  Codec
	}{
		{"constant-float", RLE},
		{"text-repeat", RLE}, // identical payloads repeat: runs win
		{"ramp-float", Gorilla},
		{"noisy-float-gaps", Gorilla},
		{"incompressible", LZ},
		{"non-monotonic-ts", Raw}, // 1-byte payloads: nothing to model
	} {
		if got := Choose(blocks[tc.block]); got.ID() != tc.want.ID() {
			t.Errorf("Choose(%s) = %s, want %s", tc.block, got.Name(), tc.want.Name())
		}
	}
	if got := Choose(nil); got.ID() != IDRaw {
		t.Errorf("Choose(empty) = %s, want raw", got.Name())
	}

	// Varied text with little duplication must go to LZ, not RLE.
	var varied []filtering.Delivery
	for i := 0; i < 16; i++ {
		varied = append(varied, entry(uint64(2000+i), testEpoch.Add(time.Duration(i)*time.Second),
			[]byte("reading number "+string(rune('a'+i))+" from the sensor")))
	}
	if got := Choose(varied); got.ID() != IDLZ {
		t.Errorf("Choose(varied text) = %s, want lz", got.Name())
	}
}

func TestByIDByName(t *testing.T) {
	for _, c := range allCodecs() {
		byID, ok := ByID(c.ID())
		if !ok || byID.Name() != c.Name() {
			t.Errorf("ByID(%d) = %v, %v", c.ID(), byID, ok)
		}
		byName, ok := ByName(c.Name())
		if !ok || byName.ID() != c.ID() {
			t.Errorf("ByName(%q) = %v, %v", c.Name(), byName, ok)
		}
	}
	if _, ok := ByID(idCount); ok {
		t.Error("ByID(idCount) should fail")
	}
	if _, ok := ByName("zstd"); ok {
		t.Error(`ByName("zstd") should fail`)
	}
}

func TestPickerFor(t *testing.T) {
	blocks := testBlocks()
	for _, name := range []string{"raw", "gorilla", "rle", "lz"} {
		p, err := PickerFor(name)
		if err != nil {
			t.Fatalf("PickerFor(%q): %v", name, err)
		}
		if got := p(blocks["ramp-float"]); got.Name() != name {
			t.Errorf("PickerFor(%q) picked %s", name, got.Name())
		}
	}
	p, err := PickerFor("auto")
	if err != nil {
		t.Fatal(err)
	}
	if got := p(blocks["ramp-float"]); got.ID() != IDGorilla {
		t.Errorf("auto picked %s for ramp-float", got.Name())
	}
	if _, err := PickerFor("snappy"); err == nil {
		t.Error("PickerFor(snappy) should fail")
	}
	names := Names()
	if names[len(names)-1] != "auto" {
		t.Errorf("Names() = %v, want auto last", names)
	}
}

// TestLZRoundTripLarge pushes the LZ match finder across hash collisions,
// long matches (chained tokens) and long literal runs.
func TestLZRoundTripLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	page := make([]byte, 4096)
	rng.Read(page)
	long := bytes.Repeat([]byte("abcdefgh"), 200) // 1600-byte match chain
	var block []filtering.Delivery
	payloads := [][]byte{page, long, page[:1000], long[:333], page[2000:]}
	for i, p := range payloads {
		block = append(block, entry(uint64(3000+i), testEpoch.Add(time.Duration(i)*time.Second), p))
	}
	roundTrip(t, LZ, block)
	if enc := LZ.Encode(nil, block); len(enc) >= len(Raw.Encode(nil, block)) {
		t.Errorf("LZ failed to compress repeated pages: %d bytes", len(enc))
	}
}

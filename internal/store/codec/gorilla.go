package codec

import (
	"encoding/binary"
	"math/bits"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// gorillaCodec compresses fixed 8-byte payloads — float64 sensor
// readings — with the XOR scheme from Facebook's Gorilla TSDB (Pelkonen
// et al., VLDB 2015): successive values XOR to words that are zero (the
// reading held) or carry a short run of meaningful bits (it drifted),
// and the leading/trailing-zero window of the previous value usually
// still fits, so most samples cost 1–2 bits of control plus the
// meaningful bits. Timestamp regularity is already captured by the
// shared metadata's delta-of-delta varints.
//
// Payload section: mode byte — 1 when every payload is exactly 8 bytes,
// then the bit-packed XOR stream; 0 otherwise, then raw length-prefixed
// payloads (the codec never fails, it degrades).
type gorillaCodec struct{}

func (gorillaCodec) ID() ID       { return IDGorilla }
func (gorillaCodec) Name() string { return "gorilla" }

func (gorillaCodec) Encode(dst []byte, block []filtering.Delivery) []byte {
	fixed8 := true
	for i := range block {
		if len(block[i].Msg.Payload) != 8 {
			fixed8 = false
			break
		}
	}
	dst = encodeMeta(dst, block)
	if !fixed8 {
		dst = append(dst, 0)
		for i := range block {
			p := block[i].Msg.Payload
			dst = appendUvarint(dst, uint64(len(p)))
			dst = append(dst, p...)
		}
		return dst
	}
	dst = append(dst, 1)
	w := bitWriter{buf: dst}
	var prev uint64
	prevLead, prevSig := uint(0), uint(0)
	for i := range block {
		v := binary.BigEndian.Uint64(block[i].Msg.Payload)
		if i == 0 {
			w.write64(v, 64)
			prev = v
			continue
		}
		x := v ^ prev
		prev = v
		if x == 0 {
			w.writeBit(0)
			continue
		}
		lead := uint(bits.LeadingZeros64(x))
		if lead > 31 {
			lead = 31 // 5-bit field; a narrower window is still correct
		}
		trail := uint(bits.TrailingZeros64(x))
		sig := 64 - lead - trail
		if prevSig > 0 && lead >= prevLead && sig <= prevSig && 64-prevLead-prevSig <= trail {
			// Previous window still covers the meaningful bits.
			w.writeBits(0b10, 2)
			w.write64(x>>(64-prevLead-prevSig), prevSig)
			continue
		}
		w.writeBits(0b11, 2)
		w.writeBits(uint64(lead), 5)
		w.writeBits(uint64(sig-1), 6) // 1..64 stored as 0..63
		w.write64(x>>trail, sig)
		prevLead, prevSig = lead, sig
	}
	return w.finish()
}

func (gorillaCodec) Decode(dst []filtering.Delivery, stream wire.StreamID, src []byte, sc *Scratch) ([]filtering.Delivery, error) {
	sc.reset()
	r := &reader{src: src}
	start := len(dst)
	dst, err := decodeMeta(dst, stream, r)
	if err != nil {
		return dst, err
	}
	entries := dst[start:]
	mode, err := r.byte()
	if err != nil {
		return dst, err
	}
	switch mode {
	case 0:
		for range entries {
			n, err := r.uvarint()
			if err != nil {
				return dst, err
			}
			b, err := r.bytes(int(n))
			if err != nil {
				return dst, err
			}
			sc.appendPayload(b)
		}
	case 1:
		br := bitReader{src: r.src[r.pos:]}
		var prev uint64
		prevLead, prevSig := uint(0), uint(0)
		var word [8]byte
		for i := range entries {
			if i == 0 {
				v, err := br.read64(64)
				if err != nil {
					return dst, err
				}
				prev = v
			} else {
				b, err := br.readBit()
				if err != nil {
					return dst, err
				}
				if b == 1 {
					ctl, err := br.readBit()
					if err != nil {
						return dst, err
					}
					lead, sig := prevLead, prevSig
					if ctl == 1 {
						l, err := br.readBits(5)
						if err != nil {
							return dst, err
						}
						s, err := br.readBits(6)
						if err != nil {
							return dst, err
						}
						lead, sig = uint(l), uint(s)+1
						prevLead, prevSig = lead, sig
					} else if sig == 0 {
						return dst, corrupt("gorilla window reuse before first window")
					}
					if lead+sig > 64 {
						return dst, corrupt("gorilla window %d+%d out of range", lead, sig)
					}
					m, err := br.read64(sig)
					if err != nil {
						return dst, err
					}
					prev ^= m << (64 - lead - sig)
				}
			}
			binary.BigEndian.PutUint64(word[:], prev)
			sc.appendPayload(word[:])
		}
	default:
		return dst, corrupt("gorilla mode byte %d", mode)
	}
	if err := finishPayloads(entries, sc); err != nil {
		return dst, err
	}
	return dst, nil
}

package codec

import (
	"math/rand"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
)

// benchBlock builds a 64-entry block of the named synthetic series, the
// block size the store seals by default.
func benchBlock(kind string) []filtering.Delivery {
	rng := rand.New(rand.NewSource(42))
	at := time.Unix(1_700_000_000, 0)
	block := make([]filtering.Delivery, 0, 64)
	for i := 0; i < 64; i++ {
		var p []byte
		switch kind {
		case "constant":
			p = f64(21.5)
		case "ramp":
			p = f64(20 + 0.125*float64(i))
		case "noisy-float":
			p = f64(20 + rng.NormFloat64()*0.5)
		case "text":
			p = []byte("temp=21.5C humidity=40% status=nominal battery=ok")
		}
		block = append(block, entry(uint64(1000+i), at.Add(time.Duration(i)*time.Second), p))
	}
	return block
}

func benchKinds() []string { return []string{"constant", "ramp", "noisy-float", "text"} }

// rawSize is the uncompressed payload+overhead baseline used for the
// reported compression ratio: what the hot ring holds per entry (payload
// bytes plus the per-slot delivery header).
func rawSize(block []filtering.Delivery) int {
	const slotHeader = 104 // approximate in-memory size of a ring slot's Delivery
	total := 0
	for i := range block {
		total += slotHeader + len(block[i].Msg.Payload)
	}
	return total
}

func BenchmarkStoreCodecEncode(b *testing.B) {
	for _, kind := range benchKinds() {
		block := benchBlock(kind)
		for _, c := range allCodecs() {
			b.Run(c.Name()+"/"+kind, func(b *testing.B) {
				buf := c.Encode(nil, block)
				encLen := len(buf)
				b.SetBytes(int64(rawSize(block)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = c.Encode(buf[:0], block)
				}
				b.StopTimer()
				b.ReportMetric(float64(encLen)/float64(len(block)), "bytes/msg")
				b.ReportMetric(float64(rawSize(block))/float64(encLen), "ratio")
			})
		}
		b.Run("auto/"+kind, func(b *testing.B) {
			c := Choose(block)
			b.ReportMetric(float64(c.ID()), "codec-id")
			buf := c.Encode(nil, block)
			b.SetBytes(int64(rawSize(block)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = Choose(block).Encode(buf[:0], block)
			}
		})
	}
}

func BenchmarkStoreCodecDecode(b *testing.B) {
	for _, kind := range benchKinds() {
		block := benchBlock(kind)
		for _, c := range allCodecs() {
			enc := c.Encode(nil, block)
			b.Run(c.Name()+"/"+kind, func(b *testing.B) {
				var sc Scratch
				dst := make([]filtering.Delivery, 0, len(block))
				b.SetBytes(int64(rawSize(block)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					dst, err = c.Decode(dst[:0], testStream, enc, &sc)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStoreCodecBytesPerMessage is not a timing benchmark: it
// reports the retained-bytes-per-message figure each codec achieves on
// the synthetic series, the number the ISSUE's ≥5× criterion is about.
func BenchmarkStoreCodecBytesPerMessage(b *testing.B) {
	for _, kind := range benchKinds() {
		block := benchBlock(kind)
		for _, c := range allCodecs() {
			b.Run(c.Name()+"/"+kind, func(b *testing.B) {
				var enc []byte
				for i := 0; i < b.N; i++ {
					enc = c.Encode(enc[:0], block)
				}
				b.ReportMetric(float64(len(enc))/float64(len(block)), "bytes/msg")
				b.ReportMetric(float64(rawSize(block))/float64(len(enc)), "ratio")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

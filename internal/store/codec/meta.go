package codec

import (
	"math"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Shared block metadata layout, identical across codecs so only the
// payload section differs:
//
//	uvarint count
//	uvarint firstSeq                      (extended sequence of entry 0)
//	uvarint nReceivers; nReceivers × (uvarint len, bytes)
//	per entry i:
//	  uvarint seqDelta                    (i ≥ 1; gap to previous entry)
//	  svarint tsDoD                       (delta-of-delta of UnixNano;
//	                                       entry 0 carries the absolute
//	                                       time, entry 1 the first delta)
//	  uvarint receiverIndex               (only when nReceivers > 1)
//	  uvarint rssiXOR                     (float64 bits XOR previous)
//	  byte    flags; then the wire format's flag-conditional fields:
//	  uvarint ackID (ack), byte hop (relayed), byte fused (fused)
//
// The wire sequence is not stored: by construction of the store's unwrap
// the low 16 bits of the extended sequence are the wire sequence.

// appendUvarint appends v in LEB128.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// appendSvarint appends v zigzag-encoded.
func appendSvarint(dst []byte, v int64) []byte {
	return appendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

// reader walks an encoded block.
type reader struct {
	src []byte
	pos int
}

func (r *reader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if r.pos >= len(r.src) {
			return 0, corrupt("truncated uvarint")
		}
		b := r.src[r.pos]
		r.pos++
		if shift == 63 && b > 1 {
			return 0, corrupt("uvarint overflow")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, corrupt("uvarint overflow")
		}
	}
}

func (r *reader) svarint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.src) {
		return 0, corrupt("truncated byte")
	}
	b := r.src[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.src) {
		return nil, corrupt("truncated bytes (%d wanted)", n)
	}
	b := r.src[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// maxBlockEntries caps the entry count a decoder will accept, a
// corruption guard far above any store block size.
const maxBlockEntries = 1 << 20

// encodeMeta writes the shared metadata section for block.
func encodeMeta(dst []byte, block []filtering.Delivery) []byte {
	dst = appendUvarint(dst, uint64(len(block)))
	dst = appendUvarint(dst, block[0].StoreSeq)

	// Receiver dictionary: first-seen order. Blocks overwhelmingly carry
	// one receiver, so the scan is cheap and the per-entry index is
	// omitted entirely for the single-receiver case.
	var dict [8]string
	nRecv := 0
	spill := false // pathological: fall back to per-entry strings
	for i := range block {
		name := block[i].Receiver
		found := false
		for j := 0; j < nRecv; j++ {
			if dict[j] == name {
				found = true
				break
			}
		}
		if !found {
			if nRecv == len(dict) {
				spill = true
				break
			}
			dict[nRecv] = name
			nRecv++
		}
	}
	if spill {
		nRecv = 0
	}
	dst = appendUvarint(dst, uint64(nRecv))
	for j := 0; j < nRecv; j++ {
		dst = appendUvarint(dst, uint64(len(dict[j])))
		dst = append(dst, dict[j]...)
	}

	prevSeq := block[0].StoreSeq
	var prevTS, prevDelta int64
	prevRSSI := uint64(0)
	for i := range block {
		d := &block[i]
		if i > 0 {
			dst = appendUvarint(dst, d.StoreSeq-prevSeq)
			prevSeq = d.StoreSeq
		}
		ts := d.At.UnixNano()
		if i == 0 {
			dst = appendSvarint(dst, ts)
		} else {
			delta := ts - prevTS
			dst = appendSvarint(dst, delta-prevDelta)
			prevDelta = delta
		}
		prevTS = ts
		if nRecv > 1 {
			idx := 0
			for j := 0; j < nRecv; j++ {
				if dict[j] == d.Receiver {
					idx = j
					break
				}
			}
			dst = appendUvarint(dst, uint64(idx))
		} else if spill {
			dst = appendUvarint(dst, uint64(len(d.Receiver)))
			dst = append(dst, d.Receiver...)
		}
		bits := math.Float64bits(d.RSSI)
		dst = appendUvarint(dst, bits^prevRSSI)
		prevRSSI = bits
		f := d.Msg.Flags
		dst = append(dst, byte(f))
		if f.Has(wire.FlagUpdateAck) {
			dst = appendUvarint(dst, uint64(d.Msg.AckID))
		}
		if f.Has(wire.FlagRelayed) {
			dst = append(dst, d.Msg.HopCount)
		}
		if f.Has(wire.FlagFused) {
			dst = append(dst, d.Msg.FusedCount)
		}
	}
	return dst
}

// decodeMeta reads the metadata section, appending count deliveries with
// nil payloads to dst. The payload section decoder fills payloads in.
func decodeMeta(dst []filtering.Delivery, stream wire.StreamID, r *reader) ([]filtering.Delivery, error) {
	count, err := r.uvarint()
	if err != nil {
		return dst, err
	}
	if count == 0 || count > maxBlockEntries {
		return dst, corrupt("bad entry count %d", count)
	}
	firstSeq, err := r.uvarint()
	if err != nil {
		return dst, err
	}
	nRecv, err := r.uvarint()
	if err != nil {
		return dst, err
	}
	if nRecv > 8 {
		return dst, corrupt("receiver dictionary too large: %d", nRecv)
	}
	var dict [8]string
	for j := uint64(0); j < nRecv; j++ {
		n, err := r.uvarint()
		if err != nil {
			return dst, err
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return dst, err
		}
		dict[j] = internReceiver(b)
	}

	seq := firstSeq
	var prevTS, prevDelta int64
	prevRSSI := uint64(0)
	for i := uint64(0); i < count; i++ {
		var d filtering.Delivery
		d.Msg.Stream = stream
		if i > 0 {
			gap, err := r.uvarint()
			if err != nil {
				return dst, err
			}
			if gap == 0 {
				return dst, corrupt("non-ascending sequence")
			}
			seq += gap
		}
		d.StoreSeq = seq
		d.Msg.Seq = wire.Seq(seq)
		sv, err := r.svarint()
		if err != nil {
			return dst, err
		}
		var ts int64
		if i == 0 {
			ts = sv
		} else {
			prevDelta += sv
			ts = prevTS + prevDelta
		}
		prevTS = ts
		d.At = time.Unix(0, ts)
		switch {
		case nRecv > 1:
			idx, err := r.uvarint()
			if err != nil {
				return dst, err
			}
			if idx >= nRecv {
				return dst, corrupt("receiver index %d of %d", idx, nRecv)
			}
			d.Receiver = dict[idx]
		case nRecv == 1:
			d.Receiver = dict[0]
		default:
			n, err := r.uvarint()
			if err != nil {
				return dst, err
			}
			b, err := r.bytes(int(n))
			if err != nil {
				return dst, err
			}
			d.Receiver = internReceiver(b)
		}
		x, err := r.uvarint()
		if err != nil {
			return dst, err
		}
		prevRSSI ^= x
		d.RSSI = math.Float64frombits(prevRSSI)
		fb, err := r.byte()
		if err != nil {
			return dst, err
		}
		d.Msg.Flags = wire.Flags(fb)
		if d.Msg.Flags.Has(wire.FlagUpdateAck) {
			a, err := r.uvarint()
			if err != nil {
				return dst, err
			}
			d.Msg.AckID = uint16(a)
		}
		if d.Msg.Flags.Has(wire.FlagRelayed) {
			if d.Msg.HopCount, err = r.byte(); err != nil {
				return dst, err
			}
		}
		if d.Msg.Flags.Has(wire.FlagFused) {
			if d.Msg.FusedCount, err = r.byte(); err != nil {
				return dst, err
			}
		}
		dst = append(dst, d)
	}
	return dst, nil
}

// finishPayloads converts the scratch offsets recorded by a payload
// decoder into payload slices over the (now stable) scratch buffer.
// Offsets are pairs into sc.bytes; a payload decoder appends one pair
// per entry. Empty payloads become nil, matching the store's
// "nil and empty are equivalent" wire rule via a canonical nil.
func finishPayloads(entries []filtering.Delivery, sc *Scratch) error {
	if len(sc.offs) != 2*len(entries) {
		return corrupt("payload count %d for %d entries", len(sc.offs)/2, len(entries))
	}
	for i := range entries {
		lo, hi := sc.offs[2*i], sc.offs[2*i+1]
		if lo < hi {
			entries[i].Msg.Payload = sc.bytes[lo:hi:hi]
		}
	}
	return nil
}

// appendPayload stages one payload's bytes in the scratch.
func (sc *Scratch) appendPayload(b []byte) {
	lo := len(sc.bytes)
	sc.bytes = append(sc.bytes, b...)
	sc.offs = append(sc.offs, lo, len(sc.bytes))
}

// bitWriter packs MSB-first bits onto a byte slice. writeBits takes at
// most 32 bits per call (≤ 7 pending + 32 new fits the accumulator);
// write64 splits wider values.
type bitWriter struct {
	buf []byte
	cur uint64 // pending bits in the low `n` positions
	n   uint   // pending bit count, always < 8 between calls
}

func (w *bitWriter) writeBit(b uint64) { w.writeBits(b, 1) }

func (w *bitWriter) writeBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	v &= (1 << n) - 1
	w.cur = w.cur<<n | v
	w.n += n
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.cur>>w.n))
	}
	w.cur &= (1 << w.n) - 1
}

func (w *bitWriter) write64(v uint64, n uint) {
	if n > 32 {
		w.writeBits(v>>32, n-32)
		n = 32
	}
	w.writeBits(v, n)
}

// finish flushes the partial byte (zero-padded) and returns the buffer.
func (w *bitWriter) finish() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.n)))
		w.cur, w.n = 0, 0
	}
	return w.buf
}

// bitReader reads MSB-first bits; readBits takes at most 32 bits per
// call, read64 splits wider reads.
type bitReader struct {
	src []byte
	pos int // next byte
	cur uint64
	n   uint
}

func (r *bitReader) readBits(n uint) (uint64, error) {
	for r.n < n {
		if r.pos >= len(r.src) {
			return 0, corrupt("truncated bitstream")
		}
		r.cur = r.cur<<8 | uint64(r.src[r.pos])
		r.pos++
		r.n += 8
	}
	r.n -= n
	v := r.cur >> r.n
	r.cur &= (1 << r.n) - 1
	return v, nil
}

func (r *bitReader) read64(n uint) (uint64, error) {
	if n <= 32 {
		return r.readBits(n)
	}
	hi, err := r.readBits(n - 32)
	if err != nil {
		return 0, err
	}
	lo, err := r.readBits(32)
	if err != nil {
		return 0, err
	}
	return hi<<32 | lo, nil
}

func (r *bitReader) readBit() (uint64, error) { return r.readBits(1) }

package codec

import (
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// rleCodec run-length encodes consecutive identical payloads — the
// natural fit for state-like streams (door open/closed, mode flags,
// quantised readings that hold a level) where a whole block can collapse
// to one run.
//
// Payload section: runs of (uvarint runLength, uvarint payloadLength,
// payload bytes) covering the block's entries in order.
type rleCodec struct{}

func (rleCodec) ID() ID       { return IDRLE }
func (rleCodec) Name() string { return "rle" }

func (rleCodec) Encode(dst []byte, block []filtering.Delivery) []byte {
	dst = encodeMeta(dst, block)
	for i := 0; i < len(block); {
		p := block[i].Msg.Payload
		run := 1
		for i+run < len(block) && bytesEqual(block[i+run].Msg.Payload, p) {
			run++
		}
		dst = appendUvarint(dst, uint64(run))
		dst = appendUvarint(dst, uint64(len(p)))
		dst = append(dst, p...)
		i += run
	}
	return dst
}

func (rleCodec) Decode(dst []filtering.Delivery, stream wire.StreamID, src []byte, sc *Scratch) ([]filtering.Delivery, error) {
	sc.reset()
	r := &reader{src: src}
	start := len(dst)
	dst, err := decodeMeta(dst, stream, r)
	if err != nil {
		return dst, err
	}
	remaining := len(dst) - start
	for remaining > 0 {
		run, err := r.uvarint()
		if err != nil {
			return dst, err
		}
		if run == 0 || run > uint64(remaining) {
			return dst, corrupt("run length %d with %d entries left", run, remaining)
		}
		n, err := r.uvarint()
		if err != nil {
			return dst, err
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return dst, err
		}
		for j := uint64(0); j < run; j++ {
			sc.appendPayload(b)
		}
		remaining -= int(run)
	}
	if err := finishPayloads(dst[start:], sc); err != nil {
		return dst, err
	}
	return dst, nil
}

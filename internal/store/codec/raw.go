package codec

import (
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// rawCodec stores payloads length-prefixed and uncompressed — the floor
// every other codec must beat, and the auto picker's choice for blocks
// too small to be worth modelling. The shared metadata section still
// applies, so even "raw" blocks are far denser than ring slots.
type rawCodec struct{}

func (rawCodec) ID() ID       { return IDRaw }
func (rawCodec) Name() string { return "raw" }

func (rawCodec) Encode(dst []byte, block []filtering.Delivery) []byte {
	dst = encodeMeta(dst, block)
	for i := range block {
		p := block[i].Msg.Payload
		dst = appendUvarint(dst, uint64(len(p)))
		dst = append(dst, p...)
	}
	return dst
}

func (rawCodec) Decode(dst []filtering.Delivery, stream wire.StreamID, src []byte, sc *Scratch) ([]filtering.Delivery, error) {
	sc.reset()
	r := &reader{src: src}
	start := len(dst)
	dst, err := decodeMeta(dst, stream, r)
	if err != nil {
		return dst, err
	}
	for range dst[start:] {
		n, err := r.uvarint()
		if err != nil {
			return dst, err
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return dst, err
		}
		sc.appendPayload(b)
	}
	if err := finishPayloads(dst[start:], sc); err != nil {
		return dst, err
	}
	return dst, nil
}

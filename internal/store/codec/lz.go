package codec

import (
	"sync"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// lzCodec is the general-purpose byte-oriented block codec: payloads are
// concatenated and run through a small LZ77 compressor (greedy 4-byte
// hash matcher over the whole block, so repetition *across* messages —
// the common case for structured or textual sensor payloads — is
// captured, not just repetition within one payload).
//
// Payload section: per-entry uvarint lengths, then a mode byte — 1 and
// (uvarint compressedLen, tokens) when compression won, 0 and the raw
// concatenation when it did not (incompressible blocks cost one byte).
//
// Token stream: control byte c — c < 0x80 is a literal run of c+1 bytes
// that follow; c ≥ 0x80 is a match of (c & 0x7f) + 4 bytes at uvarint
// distance back into the output. Longer matches chain tokens.
type lzCodec struct{}

func (lzCodec) ID() ID       { return IDLZ }
func (lzCodec) Name() string { return "lz" }

const (
	lzMinMatch = 4
	lzMaxMatch = 0x7f + lzMinMatch
	lzHashBits = 13
)

// lzScratch pools the concatenation and compression buffers plus the
// match-finder table so steady-state sealing allocates nothing.
type lzScratch struct {
	raw   []byte
	comp  []byte
	table [1 << lzHashBits]int32
}

var lzPool = sync.Pool{New: func() any { return new(lzScratch) }}

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

func lzLoad32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// lzCompress appends the token stream for src to dst.
func lzCompress(dst, src []byte, table *[1 << lzHashBits]int32) []byte {
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	emitLiterals := func(dst []byte, end int) []byte {
		for litStart < end {
			n := end - litStart
			if n > 128 {
				n = 128
			}
			dst = append(dst, byte(n-1))
			dst = append(dst, src[litStart:litStart+n]...)
			litStart += n
		}
		return dst
	}
	i := 0
	for i+lzMinMatch <= len(src) {
		h := lzHash(lzLoad32(src, i))
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || lzLoad32(src, int(cand)) != lzLoad32(src, i) {
			i++
			continue
		}
		// Extend the match.
		mlen := lzMinMatch
		for i+mlen < len(src) && src[int(cand)+mlen] == src[i+mlen] {
			mlen++
		}
		dst = emitLiterals(dst, i)
		dist := uint64(i - int(cand))
		for mlen > 0 {
			n := mlen
			if n > lzMaxMatch {
				n = lzMaxMatch
			}
			if n < lzMinMatch {
				break // tail shorter than a token; leave as literals
			}
			dst = append(dst, byte(0x80|(n-lzMinMatch)))
			dst = appendUvarint(dst, dist)
			i += n
			mlen -= n
		}
		litStart = i
	}
	return emitLiterals(dst, len(src))
}

// lzDecompress appends the decompression of the token stream to dst,
// stopping once want bytes have been produced.
func lzDecompress(dst []byte, r *reader, want int) ([]byte, error) {
	base := len(dst)
	for len(dst)-base < want {
		c, err := r.byte()
		if err != nil {
			return dst, err
		}
		if c < 0x80 {
			b, err := r.bytes(int(c) + 1)
			if err != nil {
				return dst, err
			}
			dst = append(dst, b...)
			continue
		}
		mlen := int(c&0x7f) + lzMinMatch
		dist, err := r.uvarint()
		if err != nil {
			return dst, err
		}
		if dist == 0 || dist > uint64(len(dst)-base) {
			return dst, corrupt("lz match distance %d beyond %d output bytes", dist, len(dst)-base)
		}
		// Byte-by-byte copy: overlapping matches (dist < mlen) replicate.
		from := len(dst) - int(dist)
		for j := 0; j < mlen; j++ {
			dst = append(dst, dst[from+j])
		}
	}
	if len(dst)-base != want {
		return dst, corrupt("lz output %d bytes, want %d", len(dst)-base, want)
	}
	return dst, nil
}

func (lzCodec) Encode(dst []byte, block []filtering.Delivery) []byte {
	dst = encodeMeta(dst, block)
	sc := lzPool.Get().(*lzScratch)
	sc.raw = sc.raw[:0]
	for i := range block {
		p := block[i].Msg.Payload
		dst = appendUvarint(dst, uint64(len(p)))
		sc.raw = append(sc.raw, p...)
	}
	sc.comp = lzCompress(sc.comp[:0], sc.raw, &sc.table)
	if len(sc.comp) < len(sc.raw) {
		dst = append(dst, 1)
		dst = appendUvarint(dst, uint64(len(sc.comp)))
		dst = append(dst, sc.comp...)
	} else {
		dst = append(dst, 0)
		dst = append(dst, sc.raw...)
	}
	lzPool.Put(sc)
	return dst
}

func (lzCodec) Decode(dst []filtering.Delivery, stream wire.StreamID, src []byte, sc *Scratch) ([]filtering.Delivery, error) {
	sc.reset()
	r := &reader{src: src}
	start := len(dst)
	dst, err := decodeMeta(dst, stream, r)
	if err != nil {
		return dst, err
	}
	entries := dst[start:]
	total := 0
	for range entries {
		n, err := r.uvarint()
		if err != nil {
			return dst, err
		}
		if n > uint64(len(src))*256 {
			return dst, corrupt("implausible payload length %d", n)
		}
		sc.offs = append(sc.offs, total, total+int(n))
		total += int(n)
	}
	mode, err := r.byte()
	if err != nil {
		return dst, err
	}
	switch mode {
	case 0:
		b, err := r.bytes(total)
		if err != nil {
			return dst, err
		}
		sc.bytes = append(sc.bytes, b...)
	case 1:
		clen, err := r.uvarint()
		if err != nil {
			return dst, err
		}
		cb, err := r.bytes(int(clen))
		if err != nil {
			return dst, err
		}
		cr := &reader{src: cb}
		if sc.bytes, err = lzDecompress(sc.bytes, cr, total); err != nil {
			return dst, err
		}
	default:
		return dst, corrupt("lz mode byte %d", mode)
	}
	if err := finishPayloads(entries, sc); err != nil {
		return dst, err
	}
	return dst, nil
}

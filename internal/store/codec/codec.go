// Package codec implements the Stream Store's block compression: every
// codec encodes a closed, immutable block of retained deliveries —
// ascending extended sequences on one stream — into a self-contained byte
// string and decodes it back bit-exactly.
//
// Retained sensor readings are numeric time series, the ideal case for
// Gorilla-style compression (Pelkonen et al., VLDB 2015): timestamps are
// near-periodic (delta-of-delta ≈ 0) and successive float64 readings XOR
// to mostly-zero words. The package ships four codecs plus a heuristic
// picker:
//
//   - Gorilla: XOR-compressed 8-byte values with leading/trailing-zero
//     windows, bit-packed; the headline codec for numeric streams.
//   - RLE: run-length encoding of identical payloads, for slow-moving or
//     state-like streams.
//   - LZ: a byte-oriented LZ77 block codec (greedy hash matcher,
//     literal/copy tokens) for text or structured payloads.
//   - Raw: length-prefixed passthrough, the fallback floor.
//
// All codecs share one metadata layout (sequence deltas, timestamp
// delta-of-delta, RSSI XOR, receiver dictionary, wire flags) so the
// payload strategy is the only thing that varies; blocks are tagged with
// the codec ID by the store, making every block self-describing.
//
// # Contract
//
// Encode(Decode) must be the identity on the delivery fields the store
// retains: StoreSeq, wire sequence (derived: the low 16 bits of the
// extended sequence by construction of the unwrap), payload bytes, At
// (wall clock at nanosecond precision; the monotonic reading is
// dropped), Receiver, RSSI (bit-exact, NaN included) and the
// flag-conditional wire fields (AckID, HopCount, FusedCount — like the
// wire format itself, fields whose flag is clear are not preserved).
// Codecs are stateless and safe for concurrent use.
package codec

import (
	"errors"
	"fmt"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/intern"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// ID tags an encoded block with the codec that produced it. IDs are
// persisted as the first byte of every block — never renumber them.
type ID uint8

// Codec identifiers.
const (
	IDRaw ID = iota
	IDGorilla
	IDRLE
	IDLZ

	idCount
)

// Codec encodes and decodes closed blocks of deliveries.
type Codec interface {
	// ID is the persistent block tag.
	ID() ID
	// Name is the user-facing codec name ("gorilla", "rle", ...).
	Name() string
	// Encode appends block's encoding to dst and returns the extended
	// slice. block must be non-empty, ascending by StoreSeq, and all on
	// one stream. Encode never fails: every codec degrades to a stored
	// (uncompressed) payload section when its model does not fit.
	Encode(dst []byte, block []filtering.Delivery) []byte
	// Decode appends the block's deliveries to dst, stamping stream onto
	// every message. Payload bytes live in sc and are valid until the
	// scratch is reused; callers that keep a delivery must copy.
	Decode(dst []filtering.Delivery, stream wire.StreamID, src []byte, sc *Scratch) ([]filtering.Delivery, error)
}

// Scratch is reusable decode memory: payload bytes land in one grown
// buffer and the decoded deliveries alias it. Pool Scratches across
// decodes; the zero value is ready to use.
type Scratch struct {
	bytes []byte
	offs  []int
}

// reset prepares the scratch for one decode.
func (sc *Scratch) reset() {
	sc.bytes = sc.bytes[:0]
	sc.offs = sc.offs[:0]
}

// ErrCorrupt is wrapped by every decode failure.
var ErrCorrupt = errors.New("codec: corrupt block")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

var codecs = [idCount]Codec{
	IDRaw:     rawCodec{},
	IDGorilla: gorillaCodec{},
	IDRLE:     rleCodec{},
	IDLZ:      lzCodec{},
}

// Raw, Gorilla, RLE and LZ are the package's codec singletons.
var (
	Raw     Codec = rawCodec{}
	Gorilla Codec = gorillaCodec{}
	RLE     Codec = rleCodec{}
	LZ      Codec = lzCodec{}
)

// ByID returns the codec a block tag names.
func ByID(id ID) (Codec, bool) {
	if int(id) >= len(codecs) || codecs[id] == nil {
		return nil, false
	}
	return codecs[id], true
}

// ByName returns the codec with the given user-facing name.
func ByName(name string) (Codec, bool) {
	for _, c := range codecs {
		if c.Name() == name {
			return c, true
		}
	}
	return nil, false
}

// Names lists every selectable codec name, plus "auto".
func Names() []string {
	out := make([]string, 0, len(codecs)+1)
	for _, c := range codecs {
		out = append(out, c.Name())
	}
	return append(out, "auto")
}

// Picker chooses the codec for one closed block. A fixed picker ignores
// the block; the auto picker inspects it.
type Picker func(block []filtering.Delivery) Codec

// PickerFor resolves a codec name ("raw", "gorilla", "rle", "lz") or
// "auto" to a Picker.
func PickerFor(name string) (Picker, error) {
	if name == "auto" {
		return Choose, nil
	}
	c, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("codec: unknown codec %q (have %v)", name, Names())
	}
	return func([]filtering.Delivery) Codec { return c }, nil
}

// Choose is the heuristic auto picker: streams that repeat payloads get
// RLE, fixed 8-byte payloads (float64 readings) get Gorilla, tiny blocks
// stay Raw, everything else gets the LZ block codec.
func Choose(block []filtering.Delivery) Codec {
	if len(block) == 0 {
		return Raw
	}
	dups, fixed8, total := 0, true, 0
	for i := range block {
		p := block[i].Msg.Payload
		total += len(p)
		if len(p) != 8 {
			fixed8 = false
		}
		if i > 0 && bytesEqual(p, block[i-1].Msg.Payload) {
			dups++
		}
	}
	switch {
	case len(block) > 1 && dups*2 >= len(block)-1:
		return RLE
	case fixed8:
		return Gorilla
	case total < 2*len(block):
		return Raw // payloads too small for match-finding to pay off
	default:
		return LZ
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// internReceiver maps decoded receiver-name bytes to the process-wide
// canonical string — the same one receiver.New installs — so decoded
// blocks share receiver identity with live deliveries instead of
// rebuilding a private copy per decode. Deployments have a small fixed
// receiver set, so after warm-up block decodes allocate no strings and
// take no lock.
func internReceiver(b []byte) string {
	return intern.Bytes(b)
}

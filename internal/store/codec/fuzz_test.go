package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// FuzzCodecRoundTrip derives a valid block from the fuzz input — the
// store only ever seals well-formed blocks, so the property under test is
// Encode∘Decode identity over arbitrary payload bytes, sequence gaps,
// non-monotonic timestamps, receivers and flag combinations — and checks
// it for every codec. The first input byte steers the block shape so the
// fuzzer can reach each codec's compressed path, not just its fallback.
func FuzzCodecRoundTrip(f *testing.F) {
	// Corpus seeds: constant, ramp, noisy float, text.
	f.Add([]byte{0}, uint16(4), uint64(1))
	constant := make([]byte, 0, 64)
	ramp := make([]byte, 0, 64)
	noisy := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		constant = binary.BigEndian.AppendUint64(constant, math.Float64bits(21.5))
		ramp = binary.BigEndian.AppendUint64(ramp, math.Float64bits(20+0.125*float64(i)))
		noisy = binary.BigEndian.AppendUint64(noisy, math.Float64bits(20+float64(i%3)*0.001+float64(i)))
	}
	f.Add(constant, uint16(8), uint64(100))
	f.Add(ramp, uint16(8), uint64(65530)) // crosses the 16-bit wire wrap
	f.Add(noisy, uint16(8), uint64(1<<20))
	f.Add([]byte("temp=21.5C status=nominal temp=21.6C status=nominal"), uint16(6), uint64(7))

	f.Fuzz(func(t *testing.T, data []byte, count uint16, firstSeq uint64) {
		n := int(count%128) + 1
		block := make([]filtering.Delivery, 0, n)
		seq := firstSeq % (1 << 48) // headroom so gaps cannot overflow
		at := time.Unix(1_700_000_000, 0)
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		shape := next()
		for i := 0; i < n; i++ {
			if i > 0 {
				seq += uint64(next()%16) + 1
				at = at.Add(time.Duration(int64(next())-128) * time.Millisecond)
			}
			var payload []byte
			switch shape % 3 {
			case 0: // fixed 8-byte slices of the input, Gorilla's happy path
				lo := pos % (len(data) + 1)
				if lo+8 <= len(data) {
					payload = data[lo : lo+8]
					pos += 8
				} else if len(data) >= 8 {
					payload = data[:8]
				}
			case 1: // variable-length slices
				plen := int(next() % 64)
				lo := pos
				if lo > len(data) {
					lo = 0
				}
				hi := lo + plen
				if hi > len(data) {
					hi = len(data)
				}
				payload = data[lo:hi]
				pos = hi
			default: // the same slice every entry, RLE's happy path
				payload = data[:len(data)%9]
			}
			var rssiWord [8]byte
			for j := range rssiWord {
				rssiWord[j] = next()
			}
			d := filtering.Delivery{
				Msg: wire.Message{
					Stream:  testStream,
					Seq:     wire.Seq(seq),
					Payload: payload,
				},
				At:       at,
				Receiver: [...]string{"r0", "r1", "gw-north", ""}[next()%4],
				RSSI:     math.Float64frombits(binary.BigEndian.Uint64(rssiWord[:])),
				StoreSeq: seq,
			}
			flags := wire.Flags(next()) & (wire.FlagUpdateAck | wire.FlagRelayed | wire.FlagFused | wire.FlagEncrypted | wire.FlagLocationAware)
			d.Msg.Flags = flags
			if flags.Has(wire.FlagUpdateAck) {
				d.Msg.AckID = uint16(next()) | uint16(next())<<8
			}
			if flags.Has(wire.FlagRelayed) {
				d.Msg.HopCount = next()
			}
			if flags.Has(wire.FlagFused) {
				d.Msg.FusedCount = next()
			}
			block = append(block, d)
		}

		var sc Scratch
		for _, c := range allCodecs() {
			enc := c.Encode(nil, block)
			got, err := c.Decode(nil, testStream, enc, &sc)
			if err != nil {
				t.Fatalf("%s: decode of own encoding failed: %v", c.Name(), err)
			}
			if len(got) != len(block) {
				t.Fatalf("%s: %d entries, want %d", c.Name(), len(got), len(block))
			}
			for i := range block {
				w, h := &block[i], &got[i]
				switch {
				case h.StoreSeq != w.StoreSeq,
					h.Msg.Seq != wire.Seq(w.StoreSeq),
					!h.At.Equal(w.At),
					h.Receiver != w.Receiver,
					math.Float64bits(h.RSSI) != math.Float64bits(w.RSSI),
					!bytes.Equal(h.Msg.Payload, w.Msg.Payload),
					h.Msg.Flags != w.Msg.Flags,
					w.Msg.Flags.Has(wire.FlagUpdateAck) && h.Msg.AckID != w.Msg.AckID,
					w.Msg.Flags.Has(wire.FlagRelayed) && h.Msg.HopCount != w.Msg.HopCount,
					w.Msg.Flags.Has(wire.FlagFused) && h.Msg.FusedCount != w.Msg.FusedCount:
					t.Fatalf("%s[%d]: round-trip mismatch:\nwant %+v\ngot  %+v", c.Name(), i, w, h)
				}
			}
		}

		// Decoding the fuzz input as a block must never panic; errors are
		// expected and must be ErrCorrupt-wrapped.
		for _, c := range allCodecs() {
			if _, err := c.Decode(nil, testStream, data, &sc); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: non-corrupt decode error on arbitrary input: %v", c.Name(), err)
			}
		}
	})
}

package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// refStore is a deliberately naive reference implementation of the Stream
// Store semantics: per-stream append-slices kept sorted by extended
// sequence, with the same unwrap rule, window bookkeeping, ring-span
// growth and count/byte/age eviction order — but none of the ring
// indexing, slot reuse or sharding. The differential test below drives
// both implementations with identical randomized workloads (including
// 16-bit wire-sequence wraps and late out-of-order fills) and demands
// identical results at shard counts 1, 4 and 16.
type refStore struct {
	maxMsgs  int
	ringMax  int
	maxBytes int64
	maxAge   time.Duration
	streams  map[wire.StreamID]*refStream

	// freeze models the compressed store's cold tier: entries evicted by
	// the retention bounds move to a frozen list instead of disappearing,
	// exactly as the real store seals them into cold blocks. Queries
	// return frozen ∪ live.
	freeze bool
}

type refEntry struct {
	ext uint64
	d   filtering.Delivery
}

type refStream struct {
	entries  []refEntry // present entries, ascending ext
	frozen   []refEntry // bound-evicted entries, ascending ext (freeze mode)
	span     int        // current ring span (grows 8 → ringMax)
	minExt   uint64
	maxExt   uint64
	lastExt  uint64
	lastWire wire.Seq
}

func newRefStore(opts Options) *refStore {
	if opts.MaxMessages <= 0 {
		opts.MaxMessages = DefaultMaxMessages
	}
	return &refStore{
		maxMsgs:  opts.MaxMessages,
		ringMax:  ceilPow2(opts.MaxMessages),
		maxBytes: opts.MaxBytes,
		maxAge:   opts.MaxAge,
		streams:  make(map[wire.StreamID]*refStream),
	}
}

func (r *refStream) evictOldest(freeze bool) {
	e := r.entries[0]
	r.entries = r.entries[1:]
	if freeze {
		r.frozen = append(r.frozen, e)
	}
	r.minExt = e.ext + 1
	if len(r.entries) == 0 {
		r.minExt, r.maxExt = 0, 0
	}
}

func (rs *refStore) append(d filtering.Delivery) uint64 {
	r, ok := rs.streams[d.Msg.Stream]
	if !ok {
		r = &refStream{span: minRingSize}
		rs.streams[d.Msg.Stream] = r
	}
	var ext uint64
	if r.lastExt == 0 {
		ext = extBase + uint64(d.Msg.Seq)
	} else {
		ext = uint64(int64(r.lastExt) + int64(r.lastWire.Distance(d.Msg.Seq)))
	}
	if ext > r.lastExt {
		r.lastExt, r.lastWire = ext, d.Msg.Seq
	}
	if len(r.entries) > 0 && ext < r.minExt {
		return ext // dropped behind the window
	}
	if len(r.entries) == 0 {
		r.minExt, r.maxExt = ext, ext
	} else if ext > r.maxExt {
		for ext-r.minExt >= uint64(r.span) && r.span < rs.ringMax {
			r.span *= 2
		}
		if ext-r.minExt >= uint64(r.span) {
			target := ext - uint64(r.span) + 1
			for len(r.entries) > 0 && r.entries[0].ext < target {
				r.evictOldest(rs.freeze)
			}
			if len(r.entries) > 0 && r.minExt < target {
				r.minExt = target
			}
		}
		if len(r.entries) == 0 {
			r.minExt = ext
		}
		r.maxExt = ext
	}
	d.StoreSeq = ext
	d.Msg.Payload = append([]byte(nil), d.Msg.Payload...)
	at := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].ext >= ext })
	if at < len(r.entries) && r.entries[at].ext == ext {
		r.entries[at] = refEntry{ext: ext, d: d}
	} else {
		r.entries = append(r.entries, refEntry{})
		copy(r.entries[at+1:], r.entries[at:])
		r.entries[at] = refEntry{ext: ext, d: d}
	}
	for len(r.entries) > rs.maxMsgs {
		r.evictOldest(rs.freeze)
	}
	if rs.maxBytes > 0 {
		for r.bytes() > rs.maxBytes && len(r.entries) > 1 {
			r.evictOldest(rs.freeze)
		}
	}
	if rs.maxAge > 0 {
		cutoff := d.At.Add(-rs.maxAge)
		for len(r.entries) > 1 && r.entries[0].d.At.Before(cutoff) {
			r.evictOldest(rs.freeze)
		}
	}
	return ext
}

// all returns frozen ∪ live in ascending extended-sequence order. Every
// frozen entry precedes every live one: frozen entries are evicted off
// the window's low edge and below-window appends are dropped.
func (r *refStream) all() []refEntry {
	if len(r.frozen) == 0 {
		return r.entries
	}
	out := make([]refEntry, 0, len(r.frozen)+len(r.entries))
	out = append(out, r.frozen...)
	return append(out, r.entries...)
}

// evictTo mirrors Store.EvictTo: drop everything (frozen and live) with
// ext < upto — possibly emptying the stream. Returns dropped.
func (rs *refStore) evictTo(id wire.StreamID, upto uint64) int {
	r, ok := rs.streams[id]
	if !ok {
		return 0
	}
	n := 0
	for len(r.frozen) > 0 && r.frozen[0].ext < upto {
		r.frozen = r.frozen[1:]
		n++
	}
	for len(r.entries) > 0 && r.entries[0].ext < upto {
		r.evictOldest(false)
		n++
	}
	return n
}

// forget mirrors Store.Forget: drop every retained entry but keep the
// sequence-unwrap state — like the store's ring header, it survives so a
// resumed stream's addresses never move backwards — and reset the window
// span, like the re-materialised minimum ring. Returns dropped.
func (rs *refStore) forget(id wire.StreamID) int {
	r, ok := rs.streams[id]
	if !ok {
		return 0
	}
	n := len(r.frozen) + len(r.entries)
	r.frozen, r.entries = nil, nil
	r.span = minRingSize
	return n
}

func (rs *refStore) firstSeq(id wire.StreamID) (uint64, bool) {
	r, ok := rs.streams[id]
	if !ok {
		return 0, false
	}
	if len(r.frozen) > 0 {
		return r.frozen[0].ext, true
	}
	if len(r.entries) > 0 {
		return r.entries[0].ext, true
	}
	return 0, false
}

func (rs *refStore) oldestSince(id wire.StreamID, from uint64) (uint64, int, bool) {
	r, ok := rs.streams[id]
	if !ok {
		return 0, 0, false
	}
	for _, e := range r.all() {
		if e.ext >= from {
			return e.ext, len(e.d.Msg.Payload), true
		}
	}
	return 0, 0, false
}

func (rs *refStore) windowStats(id wire.StreamID, from, to uint64) (int, int64) {
	r, ok := rs.streams[id]
	if !ok {
		return 0, 0
	}
	count, bytes := 0, int64(0)
	for _, e := range r.all() {
		if e.ext >= from && e.ext <= to {
			count++
			bytes += int64(len(e.d.Msg.Payload))
		}
	}
	return count, bytes
}

func (r *refStream) bytes() int64 {
	var n int64
	for _, e := range r.entries {
		n += int64(len(e.d.Msg.Payload))
	}
	return n
}

func (rs *refStore) rng(id wire.StreamID, from, to uint64) []filtering.Delivery {
	r, ok := rs.streams[id]
	if !ok {
		return nil
	}
	var out []filtering.Delivery
	for _, e := range r.all() {
		if e.ext >= from && e.ext <= to {
			out = append(out, e.d)
		}
	}
	return out
}

func (rs *refStore) latest(id wire.StreamID) (filtering.Delivery, bool) {
	r, ok := rs.streams[id]
	if !ok || len(r.entries) == 0 {
		return filtering.Delivery{}, false
	}
	return r.entries[len(r.entries)-1].d, true
}

func (rs *refStore) since(id wire.StreamID, t time.Time) []filtering.Delivery {
	r, ok := rs.streams[id]
	if !ok {
		return nil
	}
	var out []filtering.Delivery
	for _, e := range r.all() {
		if !e.d.At.Before(t) {
			out = append(out, e.d)
		}
	}
	return out
}

// sameDeliveriesFull is sameDeliveries plus every field a codec must
// round-trip: receiver, RSSI (bit-exact), flags and their conditional
// wire fields. Used by the compressed-store differential, where a lossy
// codec would slip past the payload-only comparator.
func sameDeliveriesFull(a, b []filtering.Delivery) error {
	if err := sameDeliveries(a, b); err != nil {
		return err
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Receiver != y.Receiver ||
			math.Float64bits(x.RSSI) != math.Float64bits(y.RSSI) ||
			x.Msg.Flags != y.Msg.Flags || x.Msg.AckID != y.Msg.AckID ||
			x.Msg.HopCount != y.Msg.HopCount || x.Msg.FusedCount != y.Msg.FusedCount {
			return fmt.Errorf("entry %d metadata: %+v vs %+v", i, x, y)
		}
	}
	return nil
}

func sameDeliveries(a, b []filtering.Delivery) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.StoreSeq != y.StoreSeq || x.Msg.Stream != y.Msg.Stream ||
			x.Msg.Seq != y.Msg.Seq || !x.At.Equal(y.At) ||
			!bytes.Equal(x.Msg.Payload, y.Msg.Payload) {
			return fmt.Errorf("entry %d: %+v vs %+v", i, x, y)
		}
	}
	return nil
}

// TestStoreMatchesReferenceProperty drives the sharded ring store and the
// naive reference with identical randomized workloads — monotone runs,
// forward jumps that cross the 16-bit wire-seq wrap, late out-of-order
// fills, mixed payload sizes and advancing timestamps — under count, byte
// and age bounds, and checks Range/Latest/Since and the retained totals
// agree exactly at shard counts 1, 4 and 16.
func TestStoreMatchesReferenceProperty(t *testing.T) {
	shardCounts := []int{1, 4, 16}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		opts := Options{
			MaxMessages: []int{4, 16, 50}[trial%3],
			MaxBytes:    []int64{0, 300}[trial%2],
			MaxAge:      []time.Duration{0, 40 * time.Second}[(trial/2)%2],
		}
		stores := make([]*Store, len(shardCounts))
		for i, n := range shardCounts {
			o := opts
			o.Shards = n
			stores[i] = New(o)
		}
		ref := newRefStore(opts)

		streams := make([]wire.StreamID, 6)
		wireSeq := make([]int, len(streams))
		for i := range streams {
			streams[i] = wire.MustStreamID(wire.SensorID(rng.Intn(1000)+1), wire.StreamIndex(i))
			wireSeq[i] = rng.Intn(wire.SeqCount) // random start, some near the wrap
		}
		now := epoch

		for step := 0; step < 800; step++ {
			si := rng.Intn(len(streams))
			id := streams[si]
			now = now.Add(time.Duration(rng.Intn(3000)) * time.Millisecond)

			seq := wireSeq[si]
			switch k := rng.Intn(10); {
			case k < 7: // in-order next
				wireSeq[si]++
			case k < 9: // forward jump (may cross the wrap many times over a trial)
				wireSeq[si] += rng.Intn(100) + 2
			default: // late out-of-order fill behind the head
				seq -= rng.Intn(40) + 1
			}
			payload := make([]byte, rng.Intn(40))
			for i := range payload {
				payload[i] = byte(rng.Intn(256))
			}
			d := del(id, wire.Seq(seq), now, payload)

			wantExt := ref.append(d)
			for i, s := range stores {
				if ext := s.Append(d); ext != wantExt {
					t.Fatalf("trial %d step %d shards=%d: ext %d, ref %d", trial, step, shardCounts[i], ext, wantExt)
				}
			}

			if step%20 != 0 {
				continue
			}
			// Checkpoint: full-window and sub-range queries must agree.
			qid := streams[rng.Intn(len(streams))]
			lo := extBase + uint64(rng.Intn(900))
			hi := lo + uint64(rng.Intn(200))
			qt := epoch.Add(time.Duration(rng.Intn(2000)) * time.Second)
			wantAll := ref.rng(qid, 0, ^uint64(0))
			wantSub := ref.rng(qid, lo, hi)
			wantSince := ref.since(qid, qt)
			wantLatest, wantOK := ref.latest(qid)
			for i, s := range stores {
				tag := fmt.Sprintf("trial %d step %d shards=%d stream %v", trial, step, shardCounts[i], qid)
				if err := sameDeliveries(s.Range(qid, 0, ^uint64(0)), wantAll); err != nil {
					t.Fatalf("%s: Range(all): %v", tag, err)
				}
				if err := sameDeliveries(s.Range(qid, lo, hi), wantSub); err != nil {
					t.Fatalf("%s: Range(%d,%d): %v", tag, lo, hi, err)
				}
				if err := sameDeliveries(s.Since(qid, qt), wantSince); err != nil {
					t.Fatalf("%s: Since: %v", tag, err)
				}
				gotLatest, gotOK := s.Latest(qid)
				if gotOK != wantOK {
					t.Fatalf("%s: Latest ok %v, ref %v", tag, gotOK, wantOK)
				}
				if wantOK {
					if err := sameDeliveries([]filtering.Delivery{gotLatest}, []filtering.Delivery{wantLatest}); err != nil {
						t.Fatalf("%s: Latest: %v", tag, err)
					}
				}
			}
		}

		// Final state: retained totals agree across every shard count.
		var wantMsgs, wantBytes int64
		for _, r := range ref.streams {
			wantMsgs += int64(len(r.entries))
			wantBytes += r.bytes()
		}
		for i, s := range stores {
			st := s.Stats()
			if st.RetainedMessages != wantMsgs || st.RetainedBytes != wantBytes {
				t.Fatalf("trial %d shards=%d: retained %d msgs/%d B, ref %d/%d",
					trial, shardCounts[i], st.RetainedMessages, st.RetainedBytes, wantMsgs, wantBytes)
			}
		}
	}
}

// TestCompressedStoreMatchesFrozenReference is the compressed-tier
// differential: the reference freezes bound-evicted entries instead of
// dropping them, exactly as the store seals them into cold blocks, so
// every query over frozen ∪ live must match the store's cold → stage →
// hot stitching byte for byte. Each codec (and auto) runs at shard
// counts 1, 4 and 16 over workloads mixing wire-seq wraps, forward
// jumps, late fills, duplicate re-appends, per-stream payload shapes
// chosen to favour different codecs, rotating receivers, flagged
// messages, and occasional EvictTo (exercising the block split) and
// Forget.
func TestCompressedStoreMatchesFrozenReference(t *testing.T) {
	shardCounts := []int{1, 4, 16}
	codecs := []string{"raw", "gorilla", "rle", "lz", "auto"}
	for ci, codecName := range codecs {
		for trial := 0; trial < 2; trial++ {
			rng := rand.New(rand.NewSource(int64(100*ci + trial)))
			opts := Options{
				MaxMessages: []int{8, 16}[trial],
				MaxBytes:    []int64{0, 400}[trial],
				MaxAge:      []time.Duration{0, 40 * time.Second}[trial],
				Codec:       codecName,
				ColdBudget:  1 << 40, // effectively unbounded: the reference never thaws
				BlockSize:   8,
			}
			stores := make([]*Store, len(shardCounts))
			for i, n := range shardCounts {
				o := opts
				o.Shards = n
				stores[i] = New(o)
			}
			ref := newRefStore(opts)
			ref.freeze = true

			streams := make([]wire.StreamID, 4)
			wireSeq := make([]int, len(streams))
			for i := range streams {
				streams[i] = wire.MustStreamID(wire.SensorID(rng.Intn(1000)+1), wire.StreamIndex(i))
				wireSeq[i] = rng.Intn(wire.SeqCount) // some start near the wrap
			}
			receivers := []string{"rx-alpha", "rx-beta", "rx-gamma"}
			now := epoch

			// payload produces a per-stream shape: constant words (RLE),
			// smooth float ramps (Gorilla), repetitive text (LZ) and
			// incompressible noise (raw fallback).
			payload := func(si, step int) []byte {
				switch si % 4 {
				case 0:
					var b [8]byte
					binary.BigEndian.PutUint64(b[:], math.Float64bits(21.5))
					return b[:]
				case 1:
					var b [8]byte
					binary.BigEndian.PutUint64(b[:], math.Float64bits(20.0+0.125*float64(step%64)))
					return b[:]
				case 2:
					return []byte(fmt.Sprintf("sensor reading %d ok", step%32))
				default:
					b := make([]byte, rng.Intn(40))
					for i := range b {
						b[i] = byte(rng.Intn(256))
					}
					return b
				}
			}

			for step := 0; step < 500; step++ {
				si := rng.Intn(len(streams))
				id := streams[si]
				now = now.Add(time.Duration(rng.Intn(3000)) * time.Millisecond)

				seq := wireSeq[si]
				switch k := rng.Intn(10); {
				case k < 7:
					wireSeq[si]++
				case k < 9: // forward jump, crossing the wrap over a trial
					wireSeq[si] += rng.Intn(100) + 2
				default: // late fill / duplicate re-append behind the head
					seq -= rng.Intn(20) + 1
				}
				d := filtering.Delivery{
					At:       now,
					Receiver: receivers[rng.Intn(len(receivers))],
					RSSI:     -30 - rng.Float64()*40,
				}
				d.Msg.Stream = id
				d.Msg.Seq = wire.Seq(seq)
				d.Msg.Payload = payload(si, step)
				switch rng.Intn(20) {
				case 0, 1:
					d.Msg.Flags = wire.FlagUpdateAck
					d.Msg.AckID = uint16(rng.Intn(1 << 16))
				case 2:
					d.Msg.Flags = wire.FlagRelayed
					d.Msg.HopCount = byte(rng.Intn(8))
				case 3:
					d.Msg.Flags = wire.FlagFused
					d.Msg.FusedCount = byte(rng.Intn(5) + 1)
				}

				wantExt := ref.append(d)
				for i, s := range stores {
					if ext := s.Append(d); ext != wantExt {
						t.Fatalf("codec=%s trial %d step %d shards=%d: ext %d, ref %d",
							codecName, trial, step, shardCounts[i], ext, wantExt)
					}
				}

				// Occasional policy eviction: EvictTo forces cold-block
				// splits, Forget drops whole streams across all tiers.
				if step%60 == 59 {
					tid := streams[rng.Intn(len(streams))]
					var upto uint64
					if first, ok := ref.firstSeq(tid); ok {
						upto = first + uint64(rng.Intn(30))
					}
					want := ref.evictTo(tid, upto)
					for i, s := range stores {
						if got := s.EvictTo(tid, upto); got != want {
							t.Fatalf("codec=%s trial %d step %d shards=%d: EvictTo(%d) = %d, ref %d",
								codecName, trial, step, shardCounts[i], upto, got, want)
						}
					}
				}
				if step%150 == 149 {
					tid := streams[rng.Intn(len(streams))]
					want := ref.forget(tid)
					for i, s := range stores {
						if got := s.Forget(tid); got != want {
							t.Fatalf("codec=%s trial %d step %d shards=%d: Forget = %d, ref %d",
								codecName, trial, step, shardCounts[i], got, want)
						}
					}
				}

				if step%25 != 0 {
					continue
				}
				qid := streams[rng.Intn(len(streams))]
				lo := extBase
				if first, ok := ref.firstSeq(qid); ok {
					lo = first + uint64(rng.Intn(40))
				}
				hi := lo + uint64(rng.Intn(60))
				qt := epoch.Add(time.Duration(rng.Intn(1500)) * time.Second)
				wantAll := ref.rng(qid, 0, ^uint64(0))
				wantSub := ref.rng(qid, lo, hi)
				wantSince := ref.since(qid, qt)
				wantLatest, wantOK := ref.latest(qid)
				wantFirst, wantFirstOK := ref.firstSeq(qid)
				wantOSeq, wantOSize, wantOOK := ref.oldestSince(qid, lo)
				wantWC, wantWB := ref.windowStats(qid, lo, hi)
				for i, s := range stores {
					tag := fmt.Sprintf("codec=%s trial %d step %d shards=%d stream %v",
						codecName, trial, step, shardCounts[i], qid)
					if err := sameDeliveriesFull(s.Range(qid, 0, ^uint64(0)), wantAll); err != nil {
						t.Fatalf("%s: Range(all): %v", tag, err)
					}
					if err := sameDeliveriesFull(s.Range(qid, lo, hi), wantSub); err != nil {
						t.Fatalf("%s: Range(%d,%d): %v", tag, lo, hi, err)
					}
					if err := sameDeliveriesFull(s.Since(qid, qt), wantSince); err != nil {
						t.Fatalf("%s: Since: %v", tag, err)
					}
					gotLatest, gotOK := s.Latest(qid)
					if gotOK != wantOK {
						t.Fatalf("%s: Latest ok %v, ref %v", tag, gotOK, wantOK)
					}
					if wantOK {
						if err := sameDeliveriesFull([]filtering.Delivery{gotLatest}, []filtering.Delivery{wantLatest}); err != nil {
							t.Fatalf("%s: Latest: %v", tag, err)
						}
					}
					gotFirst, gotFirstOK := s.FirstSeq(qid)
					if gotFirst != wantFirst || gotFirstOK != wantFirstOK {
						t.Fatalf("%s: FirstSeq = %d,%v, ref %d,%v", tag, gotFirst, gotFirstOK, wantFirst, wantFirstOK)
					}
					gotOSeq, gotOSize, gotOOK := s.OldestSince(qid, lo)
					if gotOSeq != wantOSeq || gotOSize != wantOSize || gotOOK != wantOOK {
						t.Fatalf("%s: OldestSince(%d) = %d,%d,%v, ref %d,%d,%v",
							tag, lo, gotOSeq, gotOSize, gotOOK, wantOSeq, wantOSize, wantOOK)
					}
					gotWC, gotWB := s.WindowStats(qid, lo, hi)
					if gotWC != wantWC || gotWB != wantWB {
						t.Fatalf("%s: WindowStats(%d,%d) = %d,%d, ref %d,%d",
							tag, lo, hi, gotWC, gotWB, wantWC, wantWB)
					}
				}
			}

			// Final state: with compression on and an unbounded cold
			// budget nothing is ever lost to the retention bounds — the
			// Evicted* counters stay zero and the retained gauges equal
			// the reference's frozen ∪ live totals, reconciling exactly
			// with the append/loss counters.
			var wantMsgs, wantBytes int64
			for _, r := range ref.streams {
				for _, e := range r.all() {
					wantMsgs++
					wantBytes += int64(len(e.d.Msg.Payload))
				}
			}
			for i, s := range stores {
				st := s.Stats()
				tag := fmt.Sprintf("codec=%s trial %d shards=%d", codecName, trial, shardCounts[i])
				if st.EvictedCount != 0 || st.EvictedBytes != 0 || st.EvictedAge != 0 || st.EvictedCold != 0 {
					t.Fatalf("%s: compressed store lost entries to bounds: %+v", tag, st)
				}
				if st.SealedBlocks == 0 {
					t.Fatalf("%s: no blocks sealed — the cold tier was never exercised", tag)
				}
				if st.RetainedMessages != wantMsgs || st.RetainedBytes != wantBytes {
					t.Fatalf("%s: retained %d msgs/%d B, ref %d/%d",
						tag, st.RetainedMessages, st.RetainedBytes, wantMsgs, wantBytes)
				}
				if got := st.Appended - st.Duplicates - st.DroppedBehind - st.Forgotten; got != st.RetainedMessages {
					t.Fatalf("%s: stats invariant: appended %d − dup %d − behind %d − forgotten %d = %d, retained %d",
						tag, st.Appended, st.Duplicates, st.DroppedBehind, st.Forgotten, got, st.RetainedMessages)
				}
			}
		}
	}
}

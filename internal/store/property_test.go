package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// refStore is a deliberately naive reference implementation of the Stream
// Store semantics: per-stream append-slices kept sorted by extended
// sequence, with the same unwrap rule, window bookkeeping, ring-span
// growth and count/byte/age eviction order — but none of the ring
// indexing, slot reuse or sharding. The differential test below drives
// both implementations with identical randomized workloads (including
// 16-bit wire-sequence wraps and late out-of-order fills) and demands
// identical results at shard counts 1, 4 and 16.
type refStore struct {
	maxMsgs  int
	ringMax  int
	maxBytes int64
	maxAge   time.Duration
	streams  map[wire.StreamID]*refStream
}

type refEntry struct {
	ext uint64
	d   filtering.Delivery
}

type refStream struct {
	entries  []refEntry // present entries, ascending ext
	span     int        // current ring span (grows 8 → ringMax)
	minExt   uint64
	maxExt   uint64
	lastExt  uint64
	lastWire wire.Seq
}

func newRefStore(opts Options) *refStore {
	if opts.MaxMessages <= 0 {
		opts.MaxMessages = DefaultMaxMessages
	}
	return &refStore{
		maxMsgs:  opts.MaxMessages,
		ringMax:  ceilPow2(opts.MaxMessages),
		maxBytes: opts.MaxBytes,
		maxAge:   opts.MaxAge,
		streams:  make(map[wire.StreamID]*refStream),
	}
}

func (r *refStream) evictOldest() {
	e := r.entries[0]
	r.entries = r.entries[1:]
	r.minExt = e.ext + 1
	if len(r.entries) == 0 {
		r.minExt, r.maxExt = 0, 0
	}
}

func (rs *refStore) append(d filtering.Delivery) uint64 {
	r, ok := rs.streams[d.Msg.Stream]
	if !ok {
		r = &refStream{span: minRingSize}
		rs.streams[d.Msg.Stream] = r
	}
	var ext uint64
	if r.lastExt == 0 {
		ext = extBase + uint64(d.Msg.Seq)
	} else {
		ext = uint64(int64(r.lastExt) + int64(r.lastWire.Distance(d.Msg.Seq)))
	}
	if ext > r.lastExt {
		r.lastExt, r.lastWire = ext, d.Msg.Seq
	}
	if len(r.entries) > 0 && ext < r.minExt {
		return ext // dropped behind the window
	}
	if len(r.entries) == 0 {
		r.minExt, r.maxExt = ext, ext
	} else if ext > r.maxExt {
		for ext-r.minExt >= uint64(r.span) && r.span < rs.ringMax {
			r.span *= 2
		}
		if ext-r.minExt >= uint64(r.span) {
			target := ext - uint64(r.span) + 1
			for len(r.entries) > 0 && r.entries[0].ext < target {
				r.evictOldest()
			}
			if len(r.entries) > 0 && r.minExt < target {
				r.minExt = target
			}
		}
		if len(r.entries) == 0 {
			r.minExt = ext
		}
		r.maxExt = ext
	}
	d.StoreSeq = ext
	d.Msg.Payload = append([]byte(nil), d.Msg.Payload...)
	at := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].ext >= ext })
	if at < len(r.entries) && r.entries[at].ext == ext {
		r.entries[at] = refEntry{ext: ext, d: d}
	} else {
		r.entries = append(r.entries, refEntry{})
		copy(r.entries[at+1:], r.entries[at:])
		r.entries[at] = refEntry{ext: ext, d: d}
	}
	for len(r.entries) > rs.maxMsgs {
		r.evictOldest()
	}
	if rs.maxBytes > 0 {
		for r.bytes() > rs.maxBytes && len(r.entries) > 1 {
			r.evictOldest()
		}
	}
	if rs.maxAge > 0 {
		cutoff := d.At.Add(-rs.maxAge)
		for len(r.entries) > 1 && r.entries[0].d.At.Before(cutoff) {
			r.evictOldest()
		}
	}
	return ext
}

func (r *refStream) bytes() int64 {
	var n int64
	for _, e := range r.entries {
		n += int64(len(e.d.Msg.Payload))
	}
	return n
}

func (rs *refStore) rng(id wire.StreamID, from, to uint64) []filtering.Delivery {
	r, ok := rs.streams[id]
	if !ok {
		return nil
	}
	var out []filtering.Delivery
	for _, e := range r.entries {
		if e.ext >= from && e.ext <= to {
			out = append(out, e.d)
		}
	}
	return out
}

func (rs *refStore) latest(id wire.StreamID) (filtering.Delivery, bool) {
	r, ok := rs.streams[id]
	if !ok || len(r.entries) == 0 {
		return filtering.Delivery{}, false
	}
	return r.entries[len(r.entries)-1].d, true
}

func (rs *refStore) since(id wire.StreamID, t time.Time) []filtering.Delivery {
	r, ok := rs.streams[id]
	if !ok {
		return nil
	}
	var out []filtering.Delivery
	for _, e := range r.entries {
		if !e.d.At.Before(t) {
			out = append(out, e.d)
		}
	}
	return out
}

func sameDeliveries(a, b []filtering.Delivery) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.StoreSeq != y.StoreSeq || x.Msg.Stream != y.Msg.Stream ||
			x.Msg.Seq != y.Msg.Seq || !x.At.Equal(y.At) ||
			!bytes.Equal(x.Msg.Payload, y.Msg.Payload) {
			return fmt.Errorf("entry %d: %+v vs %+v", i, x, y)
		}
	}
	return nil
}

// TestStoreMatchesReferenceProperty drives the sharded ring store and the
// naive reference with identical randomized workloads — monotone runs,
// forward jumps that cross the 16-bit wire-seq wrap, late out-of-order
// fills, mixed payload sizes and advancing timestamps — under count, byte
// and age bounds, and checks Range/Latest/Since and the retained totals
// agree exactly at shard counts 1, 4 and 16.
func TestStoreMatchesReferenceProperty(t *testing.T) {
	shardCounts := []int{1, 4, 16}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		opts := Options{
			MaxMessages: []int{4, 16, 50}[trial%3],
			MaxBytes:    []int64{0, 300}[trial%2],
			MaxAge:      []time.Duration{0, 40 * time.Second}[(trial/2)%2],
		}
		stores := make([]*Store, len(shardCounts))
		for i, n := range shardCounts {
			o := opts
			o.Shards = n
			stores[i] = New(o)
		}
		ref := newRefStore(opts)

		streams := make([]wire.StreamID, 6)
		wireSeq := make([]int, len(streams))
		for i := range streams {
			streams[i] = wire.MustStreamID(wire.SensorID(rng.Intn(1000)+1), wire.StreamIndex(i))
			wireSeq[i] = rng.Intn(wire.SeqCount) // random start, some near the wrap
		}
		now := epoch

		for step := 0; step < 800; step++ {
			si := rng.Intn(len(streams))
			id := streams[si]
			now = now.Add(time.Duration(rng.Intn(3000)) * time.Millisecond)

			seq := wireSeq[si]
			switch k := rng.Intn(10); {
			case k < 7: // in-order next
				wireSeq[si]++
			case k < 9: // forward jump (may cross the wrap many times over a trial)
				wireSeq[si] += rng.Intn(100) + 2
			default: // late out-of-order fill behind the head
				seq -= rng.Intn(40) + 1
			}
			payload := make([]byte, rng.Intn(40))
			for i := range payload {
				payload[i] = byte(rng.Intn(256))
			}
			d := del(id, wire.Seq(seq), now, payload)

			wantExt := ref.append(d)
			for i, s := range stores {
				if ext := s.Append(d); ext != wantExt {
					t.Fatalf("trial %d step %d shards=%d: ext %d, ref %d", trial, step, shardCounts[i], ext, wantExt)
				}
			}

			if step%20 != 0 {
				continue
			}
			// Checkpoint: full-window and sub-range queries must agree.
			qid := streams[rng.Intn(len(streams))]
			lo := extBase + uint64(rng.Intn(900))
			hi := lo + uint64(rng.Intn(200))
			qt := epoch.Add(time.Duration(rng.Intn(2000)) * time.Second)
			wantAll := ref.rng(qid, 0, ^uint64(0))
			wantSub := ref.rng(qid, lo, hi)
			wantSince := ref.since(qid, qt)
			wantLatest, wantOK := ref.latest(qid)
			for i, s := range stores {
				tag := fmt.Sprintf("trial %d step %d shards=%d stream %v", trial, step, shardCounts[i], qid)
				if err := sameDeliveries(s.Range(qid, 0, ^uint64(0)), wantAll); err != nil {
					t.Fatalf("%s: Range(all): %v", tag, err)
				}
				if err := sameDeliveries(s.Range(qid, lo, hi), wantSub); err != nil {
					t.Fatalf("%s: Range(%d,%d): %v", tag, lo, hi, err)
				}
				if err := sameDeliveries(s.Since(qid, qt), wantSince); err != nil {
					t.Fatalf("%s: Since: %v", tag, err)
				}
				gotLatest, gotOK := s.Latest(qid)
				if gotOK != wantOK {
					t.Fatalf("%s: Latest ok %v, ref %v", tag, gotOK, wantOK)
				}
				if wantOK {
					if err := sameDeliveries([]filtering.Delivery{gotLatest}, []filtering.Delivery{wantLatest}); err != nil {
						t.Fatalf("%s: Latest: %v", tag, err)
					}
				}
			}
		}

		// Final state: retained totals agree across every shard count.
		var wantMsgs, wantBytes int64
		for _, r := range ref.streams {
			wantMsgs += int64(len(r.entries))
			wantBytes += r.bytes()
		}
		for i, s := range stores {
			st := s.Stats()
			if st.RetainedMessages != wantMsgs || st.RetainedBytes != wantBytes {
				t.Fatalf("trial %d shards=%d: retained %d msgs/%d B, ref %d/%d",
					trial, shardCounts[i], st.RetainedMessages, st.RetainedBytes, wantMsgs, wantBytes)
			}
		}
	}
}

package store

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
	"unsafe"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

func del(stream wire.StreamID, seq wire.Seq, at time.Time, payload []byte) filtering.Delivery {
	return filtering.Delivery{
		Msg: wire.Message{Stream: stream, Seq: seq, Payload: payload},
		At:  at, Receiver: "rx", RSSI: 1,
	}
}

func TestAppendAssignsMonotonicExtendedSeqs(t *testing.T) {
	s := New(Options{})
	id := wire.MustStreamID(1, 0)
	for i := 0; i < 5; i++ {
		ext := s.Append(del(id, wire.Seq(i), epoch, nil))
		if want := extBase + uint64(i); ext != want {
			t.Fatalf("append %d: ext = %d, want %d", i, ext, want)
		}
	}
}

func TestUnwrapSurvivesWireWrap(t *testing.T) {
	s := New(Options{MaxMessages: 8})
	id := wire.MustStreamID(1, 0)
	// Walk the wire sequence across the 16-bit wrap: ext must keep
	// climbing while the wire seq resets to 0.
	var last uint64
	for i := 0; i < wire.SeqCount+100; i += 13 {
		ext := s.Append(del(id, wire.Seq(i), epoch, nil))
		if ext <= last {
			t.Fatalf("ext not monotonic across wrap: %d after %d (wire %d)", ext, last, wire.Seq(i))
		}
		last = ext
	}
	st, _ := s.StreamStats(id)
	if st.LastSeq != last {
		t.Fatalf("LastSeq = %d, want %d", st.LastSeq, last)
	}
}

func TestCountBoundEvictsOldest(t *testing.T) {
	s := New(Options{MaxMessages: 4})
	id := wire.MustStreamID(1, 0)
	for i := 0; i < 10; i++ {
		s.Append(del(id, wire.Seq(i), epoch, []byte{byte(i)}))
	}
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, d := range got {
		if d.Msg.Seq != wire.Seq(6+i) {
			t.Fatalf("entry %d has wire seq %d, want %d", i, d.Msg.Seq, 6+i)
		}
	}
	if st := s.Stats(); st.EvictedCount != 6 || st.RetainedMessages != 4 || st.RetainedBytes != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestByteBoundKeepsNewest(t *testing.T) {
	s := New(Options{MaxBytes: 10})
	id := wire.MustStreamID(1, 0)
	s.Append(del(id, 0, epoch, make([]byte, 6)))
	s.Append(del(id, 1, epoch, make([]byte, 6))) // 12 > 10: evicts seq 0
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 1 || got[0].Msg.Seq != 1 {
		t.Fatalf("retained %v", got)
	}
	// A single oversized payload is still retained.
	s.Append(del(id, 2, epoch, make([]byte, 64)))
	if got := s.Range(id, 0, ^uint64(0)); len(got) != 1 || got[0].Msg.Seq != 2 {
		t.Fatalf("oversized newest not retained: %v", got)
	}
	if st := s.Stats(); st.EvictedBytes != 2 || st.RetainedBytes != 64 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAgeBoundEvictsOnAppend(t *testing.T) {
	s := New(Options{MaxAge: 10 * time.Second})
	id := wire.MustStreamID(1, 0)
	s.Append(del(id, 0, epoch, nil))
	s.Append(del(id, 1, epoch.Add(5*time.Second), nil))
	s.Append(del(id, 2, epoch.Add(30*time.Second), nil)) // both older entries expire
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 1 || got[0].Msg.Seq != 2 {
		t.Fatalf("retained %v, want only seq 2", got)
	}
	if st := s.Stats(); st.EvictedAge != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGapFillAndBehindWindowDrop(t *testing.T) {
	s := New(Options{MaxMessages: 8})
	id := wire.MustStreamID(1, 0)
	s.Append(del(id, 0, epoch, nil))
	s.Append(del(id, 5, epoch, nil)) // gap 1..4
	ext := s.Append(del(id, 3, epoch, nil))
	if want := extBase + 3; ext != want {
		t.Fatalf("late fill ext = %d, want %d", ext, want)
	}
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 3 || got[0].Msg.Seq != 0 || got[1].Msg.Seq != 3 || got[2].Msg.Seq != 5 {
		t.Fatalf("range = %v", got)
	}
	// Push the window forward so seq 1's address falls behind it; the
	// late copy is assigned its address but not stored.
	for i := 6; i < 20; i++ {
		s.Append(del(id, wire.Seq(i), epoch, nil))
	}
	before := s.Stats().RetainedMessages
	if ext := s.Append(del(id, 1, epoch, nil)); ext != extBase+1 {
		t.Fatalf("behind ext = %d, want %d", ext, extBase+1)
	}
	st := s.Stats()
	if st.DroppedBehind != 1 || st.RetainedMessages != before {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRangeClampsAndCopies(t *testing.T) {
	s := New(Options{})
	id := wire.MustStreamID(1, 0)
	payload := []byte("abc")
	s.Append(del(id, 0, epoch, payload))
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 1 || !bytes.Equal(got[0].Msg.Payload, []byte("abc")) {
		t.Fatalf("range = %v", got)
	}
	// Mutating store memory afterwards must not affect the copy.
	s.Append(del(id, 0, epoch, []byte("zzz"))) // idempotent overwrite of the same address
	if !bytes.Equal(got[0].Msg.Payload, []byte("abc")) {
		t.Fatal("Range returned aliased payload")
	}
	if r := s.Range(id, extBase+1, extBase+100); len(r) != 0 {
		t.Fatalf("out-of-window range = %v", r)
	}
}

func TestLatestSinceSnapshot(t *testing.T) {
	s := New(Options{})
	a, b := wire.MustStreamID(1, 0), wire.MustStreamID(2, 0)
	for i := 0; i < 4; i++ {
		s.Append(del(a, wire.Seq(i), epoch.Add(time.Duration(i)*time.Second), []byte{byte(i)}))
	}
	s.Append(del(b, 0, epoch, []byte{99}))

	latest, ok := s.Latest(a)
	if !ok || latest.Msg.Seq != 3 {
		t.Fatalf("latest = %v %v", latest, ok)
	}
	since := s.Since(a, epoch.Add(2*time.Second))
	if len(since) != 2 || since[0].Msg.Seq != 2 {
		t.Fatalf("since = %v", since)
	}
	snap := s.Snapshot(nil)
	if len(snap) != 2 || snap[0].Msg.Stream != a || snap[0].Msg.Seq != 3 || snap[1].Msg.Stream != b {
		t.Fatalf("snapshot = %v", snap)
	}
	only := s.Snapshot(func(id wire.StreamID) bool { return id == b })
	if len(only) != 1 || only[0].Msg.Stream != b {
		t.Fatalf("filtered snapshot = %v", only)
	}
}

func TestEvictToAndForgetKeepAddresses(t *testing.T) {
	s := New(Options{})
	id := wire.MustStreamID(1, 0)
	for i := 0; i < 6; i++ {
		s.Append(del(id, wire.Seq(i), epoch, []byte{byte(i)}))
	}
	if n := s.EvictTo(id, extBase+3); n != 3 {
		t.Fatalf("EvictTo dropped %d, want 3", n)
	}
	if first, _ := s.FirstSeq(id); first != extBase+3 {
		t.Fatalf("FirstSeq = %d", first)
	}
	if n := s.Forget(id); n != 3 {
		t.Fatalf("Forget dropped %d, want 3", n)
	}
	if _, ok := s.Latest(id); ok {
		t.Fatal("forgotten stream still has a latest value")
	}
	// Addresses keep climbing after Forget: the resumed stream must not
	// reuse handed-out sequence numbers.
	if ext := s.Append(del(id, 6, epoch, nil)); ext != extBase+6 {
		t.Fatalf("resumed ext = %d, want %d", ext, extBase+6)
	}
	if st := s.Stats(); st.Forgotten != 6 || st.RetainedMessages != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRingGrowsFromSmallStart(t *testing.T) {
	s := New(Options{MaxMessages: 1024})
	id := wire.MustStreamID(1, 0)
	for i := 0; i < 600; i++ {
		s.Append(del(id, wire.Seq(i), epoch, []byte{byte(i)}))
	}
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 600 {
		t.Fatalf("retained %d, want 600", len(got))
	}
	for i, d := range got {
		if d.StoreSeq != extBase+uint64(i) || d.Msg.Seq != wire.Seq(i) {
			t.Fatalf("entry %d = seq %d ext %d", i, d.Msg.Seq, d.StoreSeq)
		}
	}
}

func TestShardingIsTransparent(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		s := New(Options{Shards: shards, MaxMessages: 16})
		for sensor := 1; sensor <= 40; sensor++ {
			id := wire.MustStreamID(wire.SensorID(sensor), 0)
			for i := 0; i < 20; i++ {
				s.Append(del(id, wire.Seq(i), epoch, []byte{byte(sensor)}))
			}
		}
		st := s.Stats()
		if st.Streams != 40 || st.RetainedMessages != 40*16 || st.Shards != shards {
			t.Fatalf("shards=%d stats = %+v", shards, st)
		}
		if got := len(s.Streams()); got != 40 {
			t.Fatalf("shards=%d streams = %d", shards, got)
		}
	}
}

func TestAppendZeroAllocSteadyState(t *testing.T) {
	s := New(Options{MaxMessages: 64})
	id := wire.MustStreamID(1, 0)
	payload := make([]byte, 32)
	seq := 0
	// Warm up: grow the ring to capacity and the slot buffers to the
	// payload working-set size.
	for ; seq < 256; seq++ {
		s.Append(del(id, wire.Seq(seq), epoch, payload))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Append(del(id, wire.Seq(seq), epoch, payload))
		seq++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Append allocates %v/op, want 0", allocs)
	}
}

func TestOldestSince(t *testing.T) {
	s := New(Options{})
	id := wire.MustStreamID(1, 0)
	s.Append(del(id, 0, epoch, []byte("ab")))
	s.Append(del(id, 4, epoch, []byte("cdef"))) // 1..3 are holes
	seq, size, ok := s.OldestSince(id, extBase+1)
	if !ok || seq != extBase+4 || size != 4 {
		t.Fatalf("OldestSince = %d %d %v", seq, size, ok)
	}
	if _, _, ok := s.OldestSince(id, extBase+5); ok {
		t.Fatal("OldestSince past the window reported ok")
	}
}

// --- compressed cold tier ---

func compressedDel(id wire.StreamID, seq int) filtering.Delivery {
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], math.Float64bits(20+0.25*float64(seq%32)))
	return del(id, wire.Seq(seq), epoch.Add(time.Duration(seq)*50*time.Millisecond), payload[:])
}

// TestCompressedAppendZeroAllocSteadyState holds the hot-path contract
// with the cold tier enabled: once the block buffers, the seal stage and
// the cold list reach steady-state capacities, Append — including the
// amortized seal-and-encode every BlockSize appends and the cold-budget
// evictions — recycles everything and allocates nothing.
func TestCompressedAppendZeroAllocSteadyState(t *testing.T) {
	s := New(Options{MaxMessages: 16, Codec: "auto", BlockSize: 8, ColdBudget: 4096})
	id := wire.MustStreamID(1, 0)
	payload := make([]byte, 8) // reused: the store copies into its own slot buffers
	put := func(seq int) {
		binary.BigEndian.PutUint64(payload, math.Float64bits(20+0.25*float64(seq%32)))
	}
	seq := 0
	// Warm up well past the first cold-budget evictions.
	for ; seq < 4096; seq++ {
		put(seq)
		s.Append(del(id, wire.Seq(seq), epoch.Add(time.Duration(seq)*50*time.Millisecond), payload))
	}
	if st := s.Stats(); st.EvictedCold == 0 {
		t.Fatalf("warm-up never hit the cold budget: %+v", st)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		put(seq)
		s.Append(del(id, wire.Seq(seq), epoch.Add(time.Duration(seq)*50*time.Millisecond), payload))
		seq++
	})
	if allocs != 0 {
		t.Fatalf("compressed steady-state Append allocates %v/op, want 0", allocs)
	}
}

// TestCompressedBytesPerMessageRatio pins the headline win: on a smooth
// synthetic numeric series the cold tier retains each delivery in at
// least 5× fewer bytes than the hot ring's in-memory representation
// (slot struct + payload).
func TestCompressedBytesPerMessageRatio(t *testing.T) {
	s := New(Options{MaxMessages: 16, Codec: "gorilla", BlockSize: 64, ColdBudget: 1 << 30})
	id := wire.MustStreamID(7, 1)
	for seq := 0; seq < 4096; seq++ {
		s.Append(compressedDel(id, seq))
	}
	st, ok := s.StreamStats(id)
	if !ok || st.ColdBlocks == 0 || st.ColdMessages == 0 {
		t.Fatalf("nothing sealed: %+v (ok=%v)", st, ok)
	}
	slotSize := int64(unsafe.Sizeof(filtering.Delivery{})) + 8 // struct + payload
	hot := slotSize * int64(st.ColdMessages)
	if st.ColdBytes*5 > hot {
		t.Fatalf("cold tier holds %d msgs in %d B (%.1f B/msg); hot representation %d B — under 5×",
			st.ColdMessages, st.ColdBytes, float64(st.ColdBytes)/float64(st.ColdMessages), hot)
	}
	if st.Codec != "gorilla" {
		t.Fatalf("StreamStats codec = %q, want gorilla", st.Codec)
	}
}

// TestColdBudgetEviction bounds the tier: past ColdBudget compressed
// bytes the oldest blocks are dropped and credited to EvictedCold, the
// newest block always survives, and the stats identity keeps reconciling.
func TestColdBudgetEviction(t *testing.T) {
	const budget = 2048
	s := New(Options{MaxMessages: 8, Codec: "raw", BlockSize: 8, ColdBudget: budget})
	id := wire.MustStreamID(3, 2)
	payload := bytes.Repeat([]byte{0xA5}, 32)
	for seq := 0; seq < 2000; seq++ {
		payload[0] = byte(seq) // spoil RLE-style runs; raw stays honest anyway
		s.Append(del(id, wire.Seq(seq), epoch, payload))
	}
	st := s.Stats()
	if st.EvictedCold == 0 {
		t.Fatalf("budget never evicted: %+v", st)
	}
	if st.ColdBytes > budget {
		t.Fatalf("cold tier holds %d B, budget %d", st.ColdBytes, budget)
	}
	ss, ok := s.StreamStats(id)
	if !ok || ss.ColdBlocks == 0 {
		t.Fatalf("newest cold block did not survive: %+v (ok=%v)", ss, ok)
	}
	lost := st.Duplicates + st.DroppedBehind + st.EvictedCount + st.EvictedBytes +
		st.EvictedAge + st.EvictedCold + st.Forgotten
	if st.RetainedMessages != st.Appended-lost {
		t.Fatalf("stats identity: appended %d − lost %d = %d, retained %d",
			st.Appended, lost, st.Appended-lost, st.RetainedMessages)
	}
	if got := len(s.Range(id, 0, ^uint64(0))); int64(got) != st.RetainedMessages {
		t.Fatalf("Range sees %d entries, gauges say %d", got, st.RetainedMessages)
	}
}

// TestDuplicateAppendStats covers the idempotent re-append: the second
// copy replaces in place, is credited to Stats.Duplicates, and the
// retained gauges keep reconciling with the append/loss counters.
func TestDuplicateAppendStats(t *testing.T) {
	s := New(Options{MaxMessages: 8})
	id := wire.MustStreamID(9, 0)
	s.Append(del(id, 5, epoch, []byte("aa")))
	s.Append(del(id, 5, epoch.Add(time.Second), []byte("bbb")))
	st := s.Stats()
	if st.Appended != 2 || st.Duplicates != 1 {
		t.Fatalf("appended %d, duplicates %d; want 2, 1", st.Appended, st.Duplicates)
	}
	if st.RetainedMessages != 1 || st.RetainedBytes != 3 {
		t.Fatalf("retained %d msgs/%d B after replace, want 1/3", st.RetainedMessages, st.RetainedBytes)
	}
	d, ok := s.Latest(id)
	if !ok || !bytes.Equal(d.Msg.Payload, []byte("bbb")) {
		t.Fatalf("Latest = %q %v, want replacement payload", d.Msg.Payload, ok)
	}
}

// TestStatsInvariantUnderConcurrentAppend is the regression for the torn
// Stats() snapshot: gauges were read after the shard lock was released,
// so a concurrent Append could slide in between the counter reads and
// the gauge reads and break the identity
//
//	RetainedMessages = Appended − Duplicates − DroppedBehind
//	                 − Evicted{Count,Bytes,Age} − EvictedCold − Forgotten
//
// With per-shard snapshots taken under the shard lock the identity holds
// on every observation, however the appenders interleave.
func TestStatsInvariantUnderConcurrentAppend(t *testing.T) {
	s := New(Options{MaxMessages: 16, Shards: 4, Codec: "auto", BlockSize: 8, ColdBudget: 4096})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := wire.MustStreamID(wire.SensorID(w+1), wire.StreamIndex(w%4))
			rng := rand.New(rand.NewSource(int64(w)))
			payload := make([]byte, 16)
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				rng.Read(payload)
				q := seq
				if rng.Intn(16) == 0 {
					q -= rng.Intn(8) + 1 // occasional duplicate / behind-window drop
				}
				s.Append(del(id, wire.Seq(q), epoch.Add(time.Duration(seq)*time.Millisecond), payload))
			}
		}(w)
	}
	for i := 0; i < 300; i++ {
		st := s.Stats()
		lost := st.Duplicates + st.DroppedBehind + st.EvictedCount + st.EvictedBytes +
			st.EvictedAge + st.EvictedCold + st.Forgotten
		if st.RetainedMessages != st.Appended-lost {
			close(stop)
			wg.Wait()
			t.Fatalf("observation %d: appended %d − lost %d = %d, retained %d (torn snapshot)",
				i, st.Appended, lost, st.Appended-lost, st.RetainedMessages)
		}
	}
	close(stop)
	wg.Wait()
}

func TestIdleStreamRingIsOneSlot(t *testing.T) {
	s := New(Options{})
	id := wire.MustStreamID(1, 0)
	s.Append(del(id, 1, epoch, []byte{1}))
	sh := s.shardFor(id)
	sh.mu.Lock()
	n := len(sh.streams[id].slots)
	sh.mu.Unlock()
	if n != 1 {
		t.Fatalf("idle stream ring has %d slots, want 1", n)
	}
}

func TestForgetReleasesBacking(t *testing.T) {
	s := New(Options{Codec: "raw", BlockSize: 4, MaxMessages: 8})
	id := wire.MustStreamID(1, 0)
	for i := 0; i < 40; i++ {
		s.Append(del(id, wire.Seq(i), epoch, []byte{byte(i)}))
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	r := sh.streams[id]
	populated := len(r.slots) > 0 && len(r.cold) > 0
	sh.mu.Unlock()
	if !populated {
		t.Fatal("setup did not populate hot ring and cold tier")
	}
	s.Forget(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r.slots != nil || r.stage != nil || r.cold != nil {
		t.Fatalf("Forget kept backing: slots=%d stage=%d cold=%d",
			len(r.slots), len(r.stage), len(r.cold))
	}
	if r.lastExt == 0 {
		t.Fatal("Forget lost the unwrap state")
	}
	sh.mu.Unlock()
	ss, ok := s.StreamStats(id)
	sh.mu.Lock()
	if !ok {
		t.Fatal("forgotten stream lost its StreamStats entry")
	}
	// The resident estimate must collapse to the bare ring header: the
	// unwrap state survives, the backing does not.
	if want := int64(unsafe.Sizeof(ring{})); ss.ResidentBytes != want {
		t.Fatalf("forgotten stream resident %d B, want header-only %d B", ss.ResidentBytes, want)
	}
}

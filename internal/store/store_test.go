package store

import (
	"bytes"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

func del(stream wire.StreamID, seq wire.Seq, at time.Time, payload []byte) filtering.Delivery {
	return filtering.Delivery{
		Msg: wire.Message{Stream: stream, Seq: seq, Payload: payload},
		At:  at, Receiver: "rx", RSSI: 1,
	}
}

func TestAppendAssignsMonotonicExtendedSeqs(t *testing.T) {
	s := New(Options{})
	id := wire.MustStreamID(1, 0)
	for i := 0; i < 5; i++ {
		ext := s.Append(del(id, wire.Seq(i), epoch, nil))
		if want := extBase + uint64(i); ext != want {
			t.Fatalf("append %d: ext = %d, want %d", i, ext, want)
		}
	}
}

func TestUnwrapSurvivesWireWrap(t *testing.T) {
	s := New(Options{MaxMessages: 8})
	id := wire.MustStreamID(1, 0)
	// Walk the wire sequence across the 16-bit wrap: ext must keep
	// climbing while the wire seq resets to 0.
	var last uint64
	for i := 0; i < wire.SeqCount+100; i += 13 {
		ext := s.Append(del(id, wire.Seq(i), epoch, nil))
		if ext <= last {
			t.Fatalf("ext not monotonic across wrap: %d after %d (wire %d)", ext, last, wire.Seq(i))
		}
		last = ext
	}
	st, _ := s.StreamStats(id)
	if st.LastSeq != last {
		t.Fatalf("LastSeq = %d, want %d", st.LastSeq, last)
	}
}

func TestCountBoundEvictsOldest(t *testing.T) {
	s := New(Options{MaxMessages: 4})
	id := wire.MustStreamID(1, 0)
	for i := 0; i < 10; i++ {
		s.Append(del(id, wire.Seq(i), epoch, []byte{byte(i)}))
	}
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, d := range got {
		if d.Msg.Seq != wire.Seq(6+i) {
			t.Fatalf("entry %d has wire seq %d, want %d", i, d.Msg.Seq, 6+i)
		}
	}
	if st := s.Stats(); st.EvictedCount != 6 || st.RetainedMessages != 4 || st.RetainedBytes != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestByteBoundKeepsNewest(t *testing.T) {
	s := New(Options{MaxBytes: 10})
	id := wire.MustStreamID(1, 0)
	s.Append(del(id, 0, epoch, make([]byte, 6)))
	s.Append(del(id, 1, epoch, make([]byte, 6))) // 12 > 10: evicts seq 0
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 1 || got[0].Msg.Seq != 1 {
		t.Fatalf("retained %v", got)
	}
	// A single oversized payload is still retained.
	s.Append(del(id, 2, epoch, make([]byte, 64)))
	if got := s.Range(id, 0, ^uint64(0)); len(got) != 1 || got[0].Msg.Seq != 2 {
		t.Fatalf("oversized newest not retained: %v", got)
	}
	if st := s.Stats(); st.EvictedBytes != 2 || st.RetainedBytes != 64 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAgeBoundEvictsOnAppend(t *testing.T) {
	s := New(Options{MaxAge: 10 * time.Second})
	id := wire.MustStreamID(1, 0)
	s.Append(del(id, 0, epoch, nil))
	s.Append(del(id, 1, epoch.Add(5*time.Second), nil))
	s.Append(del(id, 2, epoch.Add(30*time.Second), nil)) // both older entries expire
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 1 || got[0].Msg.Seq != 2 {
		t.Fatalf("retained %v, want only seq 2", got)
	}
	if st := s.Stats(); st.EvictedAge != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGapFillAndBehindWindowDrop(t *testing.T) {
	s := New(Options{MaxMessages: 8})
	id := wire.MustStreamID(1, 0)
	s.Append(del(id, 0, epoch, nil))
	s.Append(del(id, 5, epoch, nil)) // gap 1..4
	ext := s.Append(del(id, 3, epoch, nil))
	if want := extBase + 3; ext != want {
		t.Fatalf("late fill ext = %d, want %d", ext, want)
	}
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 3 || got[0].Msg.Seq != 0 || got[1].Msg.Seq != 3 || got[2].Msg.Seq != 5 {
		t.Fatalf("range = %v", got)
	}
	// Push the window forward so seq 1's address falls behind it; the
	// late copy is assigned its address but not stored.
	for i := 6; i < 20; i++ {
		s.Append(del(id, wire.Seq(i), epoch, nil))
	}
	before := s.Stats().RetainedMessages
	if ext := s.Append(del(id, 1, epoch, nil)); ext != extBase+1 {
		t.Fatalf("behind ext = %d, want %d", ext, extBase+1)
	}
	st := s.Stats()
	if st.DroppedBehind != 1 || st.RetainedMessages != before {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRangeClampsAndCopies(t *testing.T) {
	s := New(Options{})
	id := wire.MustStreamID(1, 0)
	payload := []byte("abc")
	s.Append(del(id, 0, epoch, payload))
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 1 || !bytes.Equal(got[0].Msg.Payload, []byte("abc")) {
		t.Fatalf("range = %v", got)
	}
	// Mutating store memory afterwards must not affect the copy.
	s.Append(del(id, 0, epoch, []byte("zzz"))) // idempotent overwrite of the same address
	if !bytes.Equal(got[0].Msg.Payload, []byte("abc")) {
		t.Fatal("Range returned aliased payload")
	}
	if r := s.Range(id, extBase+1, extBase+100); len(r) != 0 {
		t.Fatalf("out-of-window range = %v", r)
	}
}

func TestLatestSinceSnapshot(t *testing.T) {
	s := New(Options{})
	a, b := wire.MustStreamID(1, 0), wire.MustStreamID(2, 0)
	for i := 0; i < 4; i++ {
		s.Append(del(a, wire.Seq(i), epoch.Add(time.Duration(i)*time.Second), []byte{byte(i)}))
	}
	s.Append(del(b, 0, epoch, []byte{99}))

	latest, ok := s.Latest(a)
	if !ok || latest.Msg.Seq != 3 {
		t.Fatalf("latest = %v %v", latest, ok)
	}
	since := s.Since(a, epoch.Add(2*time.Second))
	if len(since) != 2 || since[0].Msg.Seq != 2 {
		t.Fatalf("since = %v", since)
	}
	snap := s.Snapshot(nil)
	if len(snap) != 2 || snap[0].Msg.Stream != a || snap[0].Msg.Seq != 3 || snap[1].Msg.Stream != b {
		t.Fatalf("snapshot = %v", snap)
	}
	only := s.Snapshot(func(id wire.StreamID) bool { return id == b })
	if len(only) != 1 || only[0].Msg.Stream != b {
		t.Fatalf("filtered snapshot = %v", only)
	}
}

func TestEvictToAndForgetKeepAddresses(t *testing.T) {
	s := New(Options{})
	id := wire.MustStreamID(1, 0)
	for i := 0; i < 6; i++ {
		s.Append(del(id, wire.Seq(i), epoch, []byte{byte(i)}))
	}
	if n := s.EvictTo(id, extBase+3); n != 3 {
		t.Fatalf("EvictTo dropped %d, want 3", n)
	}
	if first, _ := s.FirstSeq(id); first != extBase+3 {
		t.Fatalf("FirstSeq = %d", first)
	}
	if n := s.Forget(id); n != 3 {
		t.Fatalf("Forget dropped %d, want 3", n)
	}
	if _, ok := s.Latest(id); ok {
		t.Fatal("forgotten stream still has a latest value")
	}
	// Addresses keep climbing after Forget: the resumed stream must not
	// reuse handed-out sequence numbers.
	if ext := s.Append(del(id, 6, epoch, nil)); ext != extBase+6 {
		t.Fatalf("resumed ext = %d, want %d", ext, extBase+6)
	}
	if st := s.Stats(); st.Forgotten != 6 || st.RetainedMessages != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRingGrowsFromSmallStart(t *testing.T) {
	s := New(Options{MaxMessages: 1024})
	id := wire.MustStreamID(1, 0)
	for i := 0; i < 600; i++ {
		s.Append(del(id, wire.Seq(i), epoch, []byte{byte(i)}))
	}
	got := s.Range(id, 0, ^uint64(0))
	if len(got) != 600 {
		t.Fatalf("retained %d, want 600", len(got))
	}
	for i, d := range got {
		if d.StoreSeq != extBase+uint64(i) || d.Msg.Seq != wire.Seq(i) {
			t.Fatalf("entry %d = seq %d ext %d", i, d.Msg.Seq, d.StoreSeq)
		}
	}
}

func TestShardingIsTransparent(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		s := New(Options{Shards: shards, MaxMessages: 16})
		for sensor := 1; sensor <= 40; sensor++ {
			id := wire.MustStreamID(wire.SensorID(sensor), 0)
			for i := 0; i < 20; i++ {
				s.Append(del(id, wire.Seq(i), epoch, []byte{byte(sensor)}))
			}
		}
		st := s.Stats()
		if st.Streams != 40 || st.RetainedMessages != 40*16 || st.Shards != shards {
			t.Fatalf("shards=%d stats = %+v", shards, st)
		}
		if got := len(s.Streams()); got != 40 {
			t.Fatalf("shards=%d streams = %d", shards, got)
		}
	}
}

func TestAppendZeroAllocSteadyState(t *testing.T) {
	s := New(Options{MaxMessages: 64})
	id := wire.MustStreamID(1, 0)
	payload := make([]byte, 32)
	seq := 0
	// Warm up: grow the ring to capacity and the slot buffers to the
	// payload working-set size.
	for ; seq < 256; seq++ {
		s.Append(del(id, wire.Seq(seq), epoch, payload))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Append(del(id, wire.Seq(seq), epoch, payload))
		seq++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Append allocates %v/op, want 0", allocs)
	}
}

func TestOldestSince(t *testing.T) {
	s := New(Options{})
	id := wire.MustStreamID(1, 0)
	s.Append(del(id, 0, epoch, []byte("ab")))
	s.Append(del(id, 4, epoch, []byte("cdef"))) // 1..3 are holes
	seq, size, ok := s.OldestSince(id, extBase+1)
	if !ok || seq != extBase+4 || size != 4 {
		t.Fatalf("OldestSince = %d %d %v", seq, size, ok)
	}
	if _, _, ok := s.OldestSince(id, extBase+5); ok {
		t.Fatal("OldestSince past the window reported ok")
	}
}

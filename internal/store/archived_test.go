package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/store/archive"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// checkArchiveIdentity asserts the extended conservation identity from
// the Stats doc: every appended delivery is retained, durably archived,
// or accounted to exactly one loss reason; recovered history is
// discounted because it was never appended to this store.
func checkArchiveIdentity(t *testing.T, s *Store, tag string) {
	t.Helper()
	st := s.Stats()
	have := st.RetainedMessages + st.ArchivedMessages - st.ArchiveRecovered
	want := st.Appended - st.Duplicates - st.DroppedBehind -
		st.EvictedCount - st.EvictedBytes - st.EvictedAge - st.EvictedCold -
		st.EvictedArchive - st.ArchiveFailed - st.Forgotten
	if have != want {
		t.Fatalf("%s: conservation identity: retained %d + archived %d − recovered %d = %d, losses say %d (%+v)",
			tag, st.RetainedMessages, st.ArchivedMessages, st.ArchiveRecovered, have, want, st)
	}
}

// TestArchiveSpillStitch drives the simplest end-to-end spill: a tiny
// cold budget pushes sealed blocks into the backend, and every query
// stitches archive → cold → hot transparently.
func TestArchiveSpillStitch(t *testing.T) {
	backend := archive.NewMem()
	s := New(Options{
		MaxMessages: 16, BlockSize: 8, ColdBudget: 1,
		Archive: backend, ArchiveSync: true,
	})
	defer s.Close()
	id := wire.MustStreamID(9, 0)
	const n = 400
	for seq := 0; seq < n; seq++ {
		s.Append(del(id, wire.Seq(seq), epoch.Add(time.Duration(seq)*time.Second), []byte(fmt.Sprintf("reading %03d", seq))))
	}

	st := s.Stats()
	if st.ArchivedBlocks == 0 || st.ArchivedMessages == 0 {
		t.Fatalf("nothing spilled: %+v", st)
	}
	if st.EvictedCold != 0 {
		t.Fatalf("cold evictions leaked past the archive: %+v", st)
	}
	checkArchiveIdentity(t, s, "after appends")

	got := s.Range(id, 0, ^uint64(0))
	if len(got) != n {
		t.Fatalf("Range(all) = %d entries, want %d", len(got), n)
	}
	for i, d := range got {
		if d.StoreSeq != extBase+uint64(i) {
			t.Fatalf("entry %d: seq %d, want %d", i, d.StoreSeq, extBase+uint64(i))
		}
		if string(d.Msg.Payload) != fmt.Sprintf("reading %03d", i) {
			t.Fatalf("entry %d: payload %q", i, d.Msg.Payload)
		}
	}
	if first, ok := s.FirstSeq(id); !ok || first != extBase {
		t.Fatalf("FirstSeq = %d %v, want %d", first, ok, extBase)
	}
	if c, b := s.WindowStats(id, 0, ^uint64(0)); c != n || b == 0 {
		t.Fatalf("WindowStats = %d, %d", c, b)
	}

	ss, ok := s.StreamStats(id)
	if !ok || ss.ArchivedBlocks == 0 || ss.ArchivedMessages == 0 || ss.ArchivedBytes == 0 {
		t.Fatalf("StreamStats misses the archive tier: %+v", ss)
	}
	if ss.Count+ss.ArchivedMessages != n {
		t.Fatalf("StreamStats: %d in memory + %d archived != %d", ss.Count, ss.ArchivedMessages, n)
	}

	// EvictTo reaches into the archive tier; Forget drops everything,
	// including the backend's state.
	cut := extBase + 100
	dropped := s.EvictTo(id, cut)
	if dropped != 100 {
		t.Fatalf("EvictTo dropped %d, want 100", dropped)
	}
	if first, ok := s.FirstSeq(id); !ok || first != cut {
		t.Fatalf("FirstSeq after EvictTo = %d %v, want %d", first, ok, cut)
	}
	checkArchiveIdentity(t, s, "after EvictTo")
	if got := s.Forget(id); got != n-100 {
		t.Fatalf("Forget dropped %d, want %d", got, n-100)
	}
	if ls, _ := backend.List(id); len(ls.Refs) != 0 {
		t.Fatalf("Forget left %d blocks in the backend", len(ls.Refs))
	}
	checkArchiveIdentity(t, s, "after Forget")
}

// TestArchiveAsyncSpill exercises the per-shard archiver goroutines:
// appends race the spill queue, Close drains what is left, and nothing
// is lost or duplicated.
func TestArchiveAsyncSpill(t *testing.T) {
	backend := archive.NewMem()
	s := New(Options{
		MaxMessages: 16, BlockSize: 8, ColdBudget: 1,
		Shards: 4, Archive: backend,
	})
	ids := []wire.StreamID{
		wire.MustStreamID(1, 0), wire.MustStreamID(2, 0),
		wire.MustStreamID(3, 0), wire.MustStreamID(4, 0),
	}
	const n = 600
	for seq := 0; seq < n; seq++ {
		for _, id := range ids {
			s.Append(del(id, wire.Seq(seq), epoch.Add(time.Duration(seq)*time.Second), []byte(fmt.Sprintf("v %d", seq))))
		}
	}
	s.Close() // drains every pending block synchronously

	st := s.Stats()
	if st.ArchivePendingBlocks != 0 || st.ArchiveQueueDepth != 0 {
		t.Fatalf("Close left pending work: %+v", st)
	}
	if st.ArchivedMessages == 0 {
		t.Fatalf("async archiver spilled nothing: %+v", st)
	}
	checkArchiveIdentity(t, s, "after close")
	for _, id := range ids {
		got := s.Range(id, 0, ^uint64(0))
		if len(got) != n {
			t.Fatalf("stream %v: Range(all) = %d entries, want %d", id, len(got), n)
		}
		for i := 1; i < len(got); i++ {
			if got[i].StoreSeq != got[i-1].StoreSeq+1 {
				t.Fatalf("stream %v: gap or duplicate at %d: %d after %d", id, i, got[i].StoreSeq, got[i-1].StoreSeq)
			}
		}
	}
}

// TestArchiveRecoveryRestart is the restart contract: a second store
// opened over the same backend serves the first one's archived history
// for streams it has never seen live, resumes the sequence address space
// where the archive ends, and drops stale appends behind it.
func TestArchiveRecoveryRestart(t *testing.T) {
	backend := archive.NewMem()
	id := wire.MustStreamID(77, 2)
	const n = 300

	s1 := New(Options{
		MaxMessages: 16, BlockSize: 8, ColdBudget: 1,
		Archive: backend, ArchiveSync: true,
	})
	for seq := 0; seq < n; seq++ {
		s1.Append(del(id, wire.Seq(seq), epoch.Add(time.Duration(seq)*time.Second), []byte(fmt.Sprintf("r%03d", seq))))
	}
	st1, _ := s1.StreamStats(id)
	archivedEnd := extBase + uint64(n-1) - uint64(st1.Count) // newest archived seq on restart boundary
	s1.Close()

	s2 := New(Options{
		MaxMessages: 16, BlockSize: 8, ColdBudget: 1,
		Archive: backend, ArchiveSync: true,
	})
	defer s2.Close()

	// The restarted store lists and serves the stream it never saw live.
	if streams := s2.Streams(); len(streams) != 1 || streams[0] != id {
		t.Fatalf("recovered Streams = %v", streams)
	}
	st := s2.Stats()
	if st.ArchiveRecovered == 0 || st.ArchivedMessages != st.ArchiveRecovered {
		t.Fatalf("recovery accounting: %+v", st)
	}
	checkArchiveIdentity(t, s2, "after recovery")
	first, ok := s2.FirstSeq(id)
	if !ok || first != extBase {
		t.Fatalf("recovered FirstSeq = %d %v", first, ok)
	}
	last, ok := s2.LastSeq(id)
	if !ok || last != archivedEnd {
		t.Fatalf("recovered LastSeq = %d %v, want %d", last, ok, archivedEnd)
	}
	recovered := s2.Range(id, 0, ^uint64(0))
	want := s1.Range(id, 0, archivedEnd)
	if err := sameDeliveriesFull(recovered, want); err != nil {
		t.Fatalf("recovered history differs from what was archived: %v", err)
	}
	ss, ok := s2.StreamStats(id)
	if !ok || ss.ArchivedMessages != int(st.ArchiveRecovered) || ss.LastSeq != archivedEnd {
		t.Fatalf("recovered StreamStats: %+v", ss)
	}

	// A stale append behind the archived history is dropped, not
	// re-addressed; the live stream resumes after the archive.
	behind := s2.Stats().DroppedBehind
	s2.Append(del(id, wire.Seq(archivedEnd-extBase), epoch, []byte("stale")))
	if got := s2.Stats().DroppedBehind; got != behind+1 {
		t.Fatalf("stale append was not dropped: %d vs %d", got, behind)
	}
	next := wire.Seq(archivedEnd + 1)
	ext := s2.Append(del(id, next, epoch.Add(time.Hour), []byte("resumed")))
	if ext != archivedEnd+1 {
		t.Fatalf("resumed append landed at %d, want %d", ext, archivedEnd+1)
	}
	all := s2.Range(id, 0, ^uint64(0))
	if len(all) != len(want)+1 || all[len(all)-1].StoreSeq != archivedEnd+1 {
		t.Fatalf("resumed stream stitches %d entries, want %d", len(all), len(want)+1)
	}
	checkArchiveIdentity(t, s2, "after resume")
}

// TestArchiveFSRestart runs the restart contract over the filesystem
// backend: same directory, two opens, identical served ranges.
func TestArchiveFSRestart(t *testing.T) {
	dir := t.TempDir()
	id := wire.MustStreamID(5, 1)
	const n = 256

	b1, err := archive.OpenFS(dir)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	s1 := New(Options{
		MaxMessages: 16, BlockSize: 8, ColdBudget: 1,
		Archive: b1, ArchiveSync: true,
	})
	for seq := 0; seq < n; seq++ {
		s1.Append(del(id, wire.Seq(seq), epoch.Add(time.Duration(seq)*time.Second), []byte(fmt.Sprintf("fs%03d", seq))))
	}
	archived := s1.Stats().ArchivedMessages
	if archived == 0 {
		t.Fatal("nothing spilled to the fs backend")
	}
	wantAll := s1.Range(id, 0, ^uint64(0))[:archived]
	s1.Close()
	if err := b1.Close(); err != nil {
		t.Fatalf("backend close: %v", err)
	}

	b2, err := archive.OpenFS(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer b2.Close()
	s2 := New(Options{
		MaxMessages: 16, BlockSize: 8, ColdBudget: 1,
		Archive: b2, ArchiveSync: true,
	})
	defer s2.Close()
	if got := s2.Stats().ArchiveRecovered; got != archived {
		t.Fatalf("recovered %d entries, first store archived %d", got, archived)
	}
	if err := sameDeliveriesFull(s2.Range(id, 0, ^uint64(0)), wantAll); err != nil {
		t.Fatalf("fs-recovered history differs: %v", err)
	}
}

// TestArchiveAppendZeroAllocSteadyState holds the hot-path contract with
// the async archiver running: sealing, spilling to the queue and the
// archiver's own commits all recycle, so steady-state Append stays at
// 0 allocs/op.
func TestArchiveAppendZeroAllocSteadyState(t *testing.T) {
	s := New(Options{
		MaxMessages: 16, BlockSize: 64, ColdBudget: 4096,
		Archive: archive.NewMem(),
	})
	defer s.Close()
	id := wire.MustStreamID(1, 0)
	payload := make([]byte, 8)
	put := func(seq int) {
		binary.BigEndian.PutUint64(payload, math.Float64bits(20+0.25*float64(seq%32)))
	}
	seq := 0
	// Warm up well past the first spills so every pool reaches its
	// steady-state capacity.
	for ; seq < 8192; seq++ {
		put(seq)
		s.Append(del(id, wire.Seq(seq), epoch.Add(time.Duration(seq)*50*time.Millisecond), payload))
	}
	if st := s.Stats(); st.ArchivedMessages == 0 && st.ArchivePendingBlocks == 0 {
		t.Fatalf("warm-up never spilled: %+v", st)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		put(seq)
		s.Append(del(id, wire.Seq(seq), epoch.Add(time.Duration(seq)*50*time.Millisecond), payload))
		seq++
	})
	if allocs != 0 {
		t.Fatalf("archived steady-state Append allocates %v/op, want 0", allocs)
	}
}

// TestArchivedStoreMatchesFrozenReference is the archive-tier
// differential: with the cold budget forced to one byte, essentially all
// sealed history spills to the backend, and every query must still match
// the frozen-tier reference byte for byte — across wire-seq wraps,
// gaps, late fills, EvictTo cuts (straddling archived blocks) and
// Forget, at shard counts 1, 4 and 16, over the in-memory and
// filesystem backends, with the async archiver racing the readers and
// one fully synchronous cell.
func TestArchivedStoreMatchesFrozenReference(t *testing.T) {
	shardCounts := []int{1, 4, 16}
	cells := []struct {
		name string
		fs   bool
		sync bool
	}{
		{name: "mem-async"},
		{name: "mem-sync", sync: true},
		{name: "fs-async", fs: true},
	}
	codecs := []string{"raw", "gorilla", "rle", "lz", "auto"}
	for ci, codecName := range codecs {
		for _, cell := range cells {
			t.Run(fmt.Sprintf("%s/%s", codecName, cell.name), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(1000*ci + len(cell.name))))
				opts := Options{
					MaxMessages: 8,
					Codec:       codecName,
					ColdBudget:  1, // everything but the newest sealed block spills
					BlockSize:   8,
					ArchiveSync: cell.sync,
				}
				stores := make([]*Store, len(shardCounts))
				for i, n := range shardCounts {
					o := opts
					o.Shards = n
					if cell.fs {
						b, err := archive.OpenFS(t.TempDir())
						if err != nil {
							t.Fatalf("OpenFS: %v", err)
						}
						defer b.Close()
						o.Archive = b
					} else {
						o.Archive = archive.NewMem()
					}
					stores[i] = New(o)
					defer stores[i].Close()
				}
				ref := newRefStore(opts)
				ref.freeze = true

				streams := make([]wire.StreamID, 4)
				wireSeq := make([]int, len(streams))
				for i := range streams {
					streams[i] = wire.MustStreamID(wire.SensorID(rng.Intn(1000)+1), wire.StreamIndex(i))
					wireSeq[i] = rng.Intn(wire.SeqCount) // some start near the wrap
				}
				receivers := []string{"rx-alpha", "rx-beta"}
				now := epoch
				payload := func(si, step int) []byte {
					switch si % 3 {
					case 0:
						var b [8]byte
						binary.BigEndian.PutUint64(b[:], math.Float64bits(20.0+0.125*float64(step%64)))
						return b[:]
					case 1:
						return []byte(fmt.Sprintf("sensor reading %d ok", step%32))
					default:
						b := make([]byte, rng.Intn(40))
						for i := range b {
							b[i] = byte(rng.Intn(256))
						}
						return b
					}
				}

				for step := 0; step < 500; step++ {
					si := rng.Intn(len(streams))
					id := streams[si]
					now = now.Add(time.Duration(rng.Intn(3000)) * time.Millisecond)
					seq := wireSeq[si]
					switch k := rng.Intn(10); {
					case k < 7:
						wireSeq[si]++
					case k < 9: // forward jump, crossing the wrap over a trial
						wireSeq[si] += rng.Intn(100) + 2
					default: // late fill / duplicate re-append behind the head
						seq -= rng.Intn(20) + 1
					}
					d := filtering.Delivery{
						At:       now,
						Receiver: receivers[rng.Intn(len(receivers))],
						RSSI:     -30 - rng.Float64()*40,
					}
					d.Msg.Stream = id
					d.Msg.Seq = wire.Seq(seq)
					d.Msg.Payload = payload(si, step)

					wantExt := ref.append(d)
					for i, s := range stores {
						if ext := s.Append(d); ext != wantExt {
							t.Fatalf("step %d shards=%d: ext %d, ref %d", step, shardCounts[i], ext, wantExt)
						}
					}

					// EvictTo cuts into archived blocks; Forget drops the
					// whole tier including the backend state.
					if step%60 == 59 {
						tid := streams[rng.Intn(len(streams))]
						var upto uint64
						if first, ok := ref.firstSeq(tid); ok {
							upto = first + uint64(rng.Intn(30))
						}
						want := ref.evictTo(tid, upto)
						for i, s := range stores {
							if got := s.EvictTo(tid, upto); got != want {
								t.Fatalf("step %d shards=%d: EvictTo(%d) = %d, ref %d", step, shardCounts[i], upto, got, want)
							}
						}
					}
					if step%150 == 149 {
						tid := streams[rng.Intn(len(streams))]
						want := ref.forget(tid)
						for i, s := range stores {
							if got := s.Forget(tid); got != want {
								t.Fatalf("step %d shards=%d: Forget = %d, ref %d", step, shardCounts[i], got, want)
							}
						}
					}

					if step%25 != 0 {
						continue
					}
					qid := streams[rng.Intn(len(streams))]
					lo := extBase
					if first, ok := ref.firstSeq(qid); ok {
						lo = first + uint64(rng.Intn(40))
					}
					hi := lo + uint64(rng.Intn(60))
					qt := epoch.Add(time.Duration(rng.Intn(1500)) * time.Second)
					wantAll := ref.rng(qid, 0, ^uint64(0))
					wantSub := ref.rng(qid, lo, hi)
					wantSince := ref.since(qid, qt)
					wantFirst, wantFirstOK := ref.firstSeq(qid)
					wantOSeq, wantOSize, wantOOK := ref.oldestSince(qid, lo)
					wantWC, wantWB := ref.windowStats(qid, lo, hi)
					for i, s := range stores {
						tag := fmt.Sprintf("step %d shards=%d stream %v", step, shardCounts[i], qid)
						if err := sameDeliveriesFull(s.Range(qid, 0, ^uint64(0)), wantAll); err != nil {
							t.Fatalf("%s: Range(all): %v", tag, err)
						}
						if err := sameDeliveriesFull(s.Range(qid, lo, hi), wantSub); err != nil {
							t.Fatalf("%s: Range(%d,%d): %v", tag, lo, hi, err)
						}
						if err := sameDeliveriesFull(s.Since(qid, qt), wantSince); err != nil {
							t.Fatalf("%s: Since: %v", tag, err)
						}
						gotFirst, gotFirstOK := s.FirstSeq(qid)
						if gotFirst != wantFirst || gotFirstOK != wantFirstOK {
							t.Fatalf("%s: FirstSeq = %d,%v, ref %d,%v", tag, gotFirst, gotFirstOK, wantFirst, wantFirstOK)
						}
						gotOSeq, gotOSize, gotOOK := s.OldestSince(qid, lo)
						if gotOSeq != wantOSeq || gotOSize != wantOSize || gotOOK != wantOOK {
							t.Fatalf("%s: OldestSince(%d) = %d,%d,%v, ref %d,%d,%v",
								tag, lo, gotOSeq, gotOSize, gotOOK, wantOSeq, wantOSize, wantOOK)
						}
						gotWC, gotWB := s.WindowStats(qid, lo, hi)
						if gotWC != wantWC || gotWB != wantWB {
							t.Fatalf("%s: WindowStats(%d,%d) = %d,%d, ref %d,%d", tag, lo, hi, gotWC, gotWB, wantWC, wantWB)
						}
					}
				}

				// Nothing is ever lost: the archive tier catches what the
				// cold budget pushes out, so retained + archived equals the
				// reference's frozen ∪ live totals and the conservation
				// identity closes. Close first — it drains the async
				// archiver's pending blocks, so the archived gauges are
				// settled (reads stay valid after Close).
				for _, s := range stores {
					s.Close()
				}
				var wantMsgs int64
				for _, r := range ref.streams {
					wantMsgs += int64(len(r.all()))
				}
				for i, s := range stores {
					tag := fmt.Sprintf("shards=%d", shardCounts[i])
					st := s.Stats()
					if st.EvictedCold != 0 || st.EvictedCount != 0 || st.EvictedBytes != 0 || st.EvictedAge != 0 ||
						st.EvictedArchive != 0 || st.ArchiveFailed != 0 {
						t.Fatalf("%s: archived store lost entries: %+v", tag, st)
					}
					if st.ArchivedMessages == 0 {
						t.Fatalf("%s: the archive tier was never exercised", tag)
					}
					if got := st.RetainedMessages + st.ArchivedMessages; got != wantMsgs {
						t.Fatalf("%s: retained %d + archived %d = %d, ref %d",
							tag, st.RetainedMessages, st.ArchivedMessages, got, wantMsgs)
					}
					checkArchiveIdentity(t, s, tag)
				}
			})
		}
	}
}

//go:build race

package perfharness

// raceEnabled: see race_off_test.go.
const raceEnabled = true

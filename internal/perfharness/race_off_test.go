//go:build !race

package perfharness

// raceEnabled reports whether the race detector is active. The quick
// sweep test skips under -race: the race runtime randomly drops
// sync.Pool puts, so the pooled batched hot paths spuriously allocate
// and Validate's 0-alloc bars fail. The multicore CI job runs the
// sweep without -race, so the bars are still enforced every run.
const raceEnabled = false

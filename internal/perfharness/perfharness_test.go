package perfharness

import (
	"encoding/json"
	"os"
	"testing"
)

// TestWriteReportsQuick runs the quick sweep end to end: both reports
// must validate (which enforces the 0-alloc paths), serialise to the
// stable schema and cover every hot path.
func TestWriteReportsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("perf sweep in -short mode")
	}
	dir := t.TempDir()
	dp, pp, err := WriteReports(Options{Quick: true, OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	wantPaths := map[string][]string{
		dp: {"dispatch", "fanin", "ring_enqueue_drain"},
		pp: {"pipeline", "store_tee", "control_submit"},
	}
	for file, paths := range wantPaths {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		var r Report
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if err := Validate(r); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		seen := map[string]bool{}
		for _, res := range r.Results {
			seen[res.Path] = true
		}
		for _, p := range paths {
			if !seen[p] {
				t.Fatalf("%s: path %q missing from results", file, p)
			}
		}
		if !r.Quick {
			t.Fatalf("%s: quick flag not recorded", file)
		}
	}
}

// TestValidate pins the failure modes the CI smoke job relies on.
func TestValidate(t *testing.T) {
	good := Report{
		Schema: Schema, Area: "dispatch", Date: "2026-08-08",
		Go: "go1.0", HostCPUs: 1,
		Results: []Result{{
			Path: "dispatch", Shards: 1, Procs: 1, Publishers: 16,
			Msgs: 100, NsPerOp: 10, MsgsPerSec: 1e6,
		}},
	}
	if err := Validate(good); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	bad := good
	bad.Schema = "garnet-bench-perf/v0"
	if Validate(bad) == nil {
		t.Fatal("wrong schema accepted")
	}

	regressed := good
	regressed.Results = []Result{{
		Path: "store_tee", Shards: 1, Procs: 1, Publishers: 16,
		Msgs: 100, NsPerOp: 10, MsgsPerSec: 1e6, AllocsPerOp: 1.5,
	}}
	if Validate(regressed) == nil {
		t.Fatal("allocs/op regression on a 0-alloc path accepted")
	}

	empty := good
	empty.Results = nil
	if Validate(empty) == nil {
		t.Fatal("empty report accepted")
	}
}

package perfharness

import (
	"encoding/json"
	"os"
	"testing"
)

// TestWriteReportsQuick runs the quick sweep end to end: all three
// reports must validate (which enforces the 0-alloc paths), serialise
// to the stable schema and cover every hot path.
func TestWriteReportsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("perf sweep in -short mode")
	}
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool puts, failing the 0-alloc bars")
	}
	dir := t.TempDir()
	dp, pp, sp, err := WriteReports(Options{Quick: true, OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// The expected path set per report is derived from the scenario
	// registry, never duplicated as literals: the registry is the single
	// source of truth for what a sweep runs.
	wantPaths := map[string]map[string]bool{dp: {}, pp: {}, sp: {}}
	for _, sc := range Scenarios() {
		file := dp
		switch sc.Area {
		case "pipeline":
			file = pp
		case "store":
			file = sp
		}
		wantPaths[file][sc.Name] = true
	}
	for file, paths := range wantPaths {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		var r Report
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if err := Validate(r); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		seen := map[string]bool{}
		for _, res := range r.Results {
			seen[res.Path] = true
		}
		for p := range paths {
			if !seen[p] {
				t.Fatalf("%s: path %q missing from results", file, p)
			}
		}
		for p := range seen {
			if !paths[p] {
				t.Fatalf("%s: path %q emitted but not registered for this area", file, p)
			}
		}
		if !r.Quick {
			t.Fatalf("%s: quick flag not recorded", file)
		}
	}
}

// TestScenarioRegistry pins the scenario list cmd/garnet-bench and the
// reports derive from: adding, removing or renaming a scenario (or
// moving its 0-alloc bar) must be a deliberate edit here too.
func TestScenarioRegistry(t *testing.T) {
	want := []ScenarioInfo{
		{"dispatch", "dispatch", false},
		{"fanin", "dispatch", false},
		{"ring_enqueue_drain", "dispatch", true},
		{"ring_enqueue_n", "dispatch", true},
		{"pipeline", "pipeline", false},
		{"pipeline_batched", "pipeline", true},
		{"store_tee", "pipeline", true},
		{"store_append_batch", "pipeline", true},
		{"control_submit", "pipeline", true},
		{"store_archive_spill", "store", true},
		{"store_archive_range", "store", false},
	}
	got := Scenarios()
	if len(got) != len(want) {
		t.Fatalf("registry has %d scenarios, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scenario %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The -scenario filter resolves through the same registry: every
	// listed name must be addressable, and an unknown name must be
	// refused before any benchmark runs.
	for _, sc := range got {
		if _, ok := scenarioByName(sc.Name); !ok {
			t.Fatalf("scenario %q listed but not addressable by name", sc.Name)
		}
	}
	if _, ok := scenarioByName("no_such_scenario"); ok {
		t.Fatal("unknown scenario name resolved")
	}
	if _, _, _, err := WriteReports(Options{Scenario: "no_such_scenario"}); err == nil {
		t.Fatal("WriteReports accepted an unknown -scenario name")
	}
}

// TestScenarioFilter runs one registry scenario through the -scenario
// path: only that scenario's cells may appear, and the other areas'
// reports must not be written at all.
func TestScenarioFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("perf sweep in -short mode")
	}
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool puts, failing the 0-alloc bars")
	}
	dir := t.TempDir()
	dp, pp, sp, err := WriteReports(Options{Quick: true, OutDir: dir, Scenario: "ring_enqueue_drain"})
	if err != nil {
		t.Fatal(err)
	}
	if pp != "" {
		t.Fatalf("pipeline report written (%q) for a dispatch-area scenario", pp)
	}
	if sp != "" {
		t.Fatalf("store report written (%q) for a dispatch-area scenario", sp)
	}
	data, err := os.ReadFile(dp)
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	for _, res := range r.Results {
		if res.Path != "ring_enqueue_drain" {
			t.Fatalf("filtered run emitted foreign cell %q", res.Path)
		}
	}
}

// TestCompare pins baseline matching: cells pair up by scenario key,
// unmatched cells are skipped, and the delta is a msgs/s percentage.
func TestCompare(t *testing.T) {
	mk := func(path, variant string, batch int, msgs float64) Result {
		return Result{Path: path, Variant: variant, Shards: 4, Procs: 4,
			Publishers: 16, Batch: batch, Msgs: 100, NsPerOp: 10, MsgsPerSec: msgs}
	}
	baseline := Report{Results: []Result{
		mk("pipeline", "", 0, 1e6),
		mk("pipeline_batched", "batched", 64, 2e6),
		mk("fanin", "mutex", 0, 5e5), // not in current: must be skipped
	}}
	current := Report{Results: []Result{
		mk("pipeline", "", 0, 1.1e6),
		mk("pipeline_batched", "batched", 64, 1e6),
		mk("ring_enqueue_n", "", 8, 9e6), // not in baseline: must be skipped
	}}
	ds := Compare(baseline, current)
	if len(ds) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(ds), ds)
	}
	if ds[0].Key != "pipeline shards=4 procs=4" || ds[0].Pct < 9.9 || ds[0].Pct > 10.1 {
		t.Fatalf("pipeline delta wrong: %+v", ds[0])
	}
	if ds[1].Key != "pipeline_batched/batched shards=4 procs=4 batch=64" || ds[1].Pct != -50 {
		t.Fatalf("batched delta wrong: %+v", ds[1])
	}
}

// TestValidate pins the failure modes the CI smoke job relies on.
func TestValidate(t *testing.T) {
	good := Report{
		Schema: Schema, Area: "dispatch", Date: "2026-08-08",
		Go: "go1.0", HostCPUs: 1,
		Results: []Result{{
			Path: "dispatch", Shards: 1, Procs: 1, Publishers: 16,
			Msgs: 100, NsPerOp: 10, MsgsPerSec: 1e6,
		}},
	}
	if err := Validate(good); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	bad := good
	bad.Schema = "garnet-bench-perf/v0"
	if Validate(bad) == nil {
		t.Fatal("wrong schema accepted")
	}

	regressed := good
	regressed.Results = []Result{{
		Path: "store_tee", Shards: 1, Procs: 1, Publishers: 16,
		Msgs: 100, NsPerOp: 10, MsgsPerSec: 1e6, AllocsPerOp: 1.5,
	}}
	if Validate(regressed) == nil {
		t.Fatal("allocs/op regression on a 0-alloc path accepted")
	}

	empty := good
	empty.Results = nil
	if Validate(empty) == nil {
		t.Fatal("empty report accepted")
	}
}

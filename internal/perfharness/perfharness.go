// Package perfharness is the multicore performance harness behind
// `garnet-bench -perf`: it sweeps {table shards} × {GOMAXPROCS} over the
// hot paths the sharding era restructured — dispatch fan-out, the
// ingest→dispatch pipeline, the store tee and the control submit — plus
// the lock-free delivery ring against its retained mutex-queue twin, and
// emits schema-stable BENCH_dispatch.json and BENCH_pipeline.json so the
// perf trajectory of future PRs is measured, not asserted.
//
// Numbers are wall-clock and therefore host-dependent; the reports
// record GOMAXPROCS, the host CPU count and the date so a reader can
// tell a 1-core container run (procs > host_cpus: oversubscribed, ring
// vs mutex parity expected) from a real multicore run (the CI multicore
// job is the arbiter for scaling claims). Allocation counts are
// host-independent; Validate enforces the 0-alloc paths.
package perfharness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/ring"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Schema identifies the report layout; bump only with a migration note
// in the README, because re-anchor tooling diffs these files across PRs.
const Schema = "garnet-bench-perf/v1"

// zeroAllocPaths are the paths Validate holds to 0 allocs/op (a small
// tolerance absorbs runtime background allocations that land inside the
// measurement window).
var zeroAllocPaths = map[string]bool{
	"ring_enqueue_drain": true,
	"store_tee":          true,
	"control_submit":     true,
}

// AllocTolerance is the allocs/op ceiling for zeroAllocPaths.
const AllocTolerance = 0.05

// Result is one measured cell of a sweep.
type Result struct {
	Path        string  `json:"path"`              // which hot path
	Variant     string  `json:"variant,omitempty"` // e.g. ring vs mutex
	Shards      int     `json:"shards"`
	Procs       int     `json:"procs"` // GOMAXPROCS during the cell
	Publishers  int     `json:"publishers"`
	Msgs        int     `json:"msgs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MsgsPerSec  float64 `json:"msgs_per_sec"`
}

// Report is one emitted BENCH_*.json document.
type Report struct {
	Schema   string   `json:"schema"`
	Area     string   `json:"area"`
	Date     string   `json:"date"`
	Go       string   `json:"go"`
	HostCPUs int      `json:"host_cpus"`
	Quick    bool     `json:"quick"`
	Results  []Result `json:"results"`
}

// Options configures a harness run.
type Options struct {
	// Quick shrinks the sweep (shards {1,16} × procs {1,4}, fewer
	// messages) for CI smoke jobs.
	Quick bool
	// OutDir receives BENCH_dispatch.json and BENCH_pipeline.json;
	// empty means the current directory.
	OutDir string
	// Log, when non-nil, receives one line per measured cell.
	Log func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o Options) shardSweep() []int {
	if o.Quick {
		return []int{1, 16}
	}
	return []int{1, 4, 16}
}

func (o Options) procSweep() []int {
	if o.Quick {
		return []int{1, 4}
	}
	return []int{1, 2, 4, 8}
}

func (o Options) msgs() int {
	if o.Quick {
		return 20_000
	}
	return 200_000
}

// measure runs fn (which must process msgs messages) at the given
// GOMAXPROCS and returns the cell. Allocations are a runtime-global
// Mallocs delta, so concurrent drainer goroutines are inside the
// measurement — exactly what the 0-alloc enforcement wants.
func measure(path, variant string, shards, procs, publishers, msgs int, fn func()) Result {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(msgs)
	return Result{
		Path:        path,
		Variant:     variant,
		Shards:      shards,
		Procs:       procs,
		Publishers:  publishers,
		Msgs:        msgs,
		NsPerOp:     float64(dur.Nanoseconds()) / float64(msgs),
		AllocsPerOp: allocs,
		MsgsPerSec:  float64(msgs) / dur.Seconds(),
	}
}

// fanOut runs publishers goroutines, splitting msgs between them, each
// calling emit(publisher, i) for its share.
func fanOut(publishers, msgs int, emit func(p, i int)) {
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		n := msgs / publishers
		if p < msgs%publishers {
			n++
		}
		wg.Add(1)
		go func(p, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				emit(p, i)
			}
		}(p, n)
	}
	wg.Wait()
}

const publishers = 16

// benchDispatch is the synchronous fan-out path: 16 publishers on
// distinct sensors, one exact no-op subscriber per stream, sweeping the
// subscription-table shard count.
func benchDispatch(shards, procs, msgs int) Result {
	d := dispatch.New(dispatch.Options{Shards: shards})
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
		if _, err := d.Subscribe(&dispatch.ConsumerFunc{
			ConsumerName: fmt.Sprintf("c%d", i),
			Fn:           func(filtering.Delivery) {},
		}, dispatch.Exact(streams[i])); err != nil {
			panic(err)
		}
	}
	// Warm the stream-advertising maps so the measured window is steady
	// state.
	for p := range streams {
		d.Dispatch(filtering.Delivery{Msg: wire.Message{Stream: streams[p]}})
	}
	return measure("dispatch", "", shards, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			d.Dispatch(filtering.Delivery{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(i)},
			})
		})
	})
}

// benchFanin is the async many-to-one path the lock-free ring exists
// for: 16 publishers target one shared async consumer, so every enqueue
// lands on the same port. variant selects the ring or the retained
// mutex queue (Options.ForceLockedQueue); the measured window includes
// the drain, so msgs/s is end-to-end enqueue→consume.
func benchFanin(variant string, procs, msgs int) Result {
	d := dispatch.New(dispatch.Options{
		Mode:             dispatch.ModeAsync,
		QueueCapacity:    8192,
		ForceLockedQueue: variant == "mutex",
	})
	var sunk int64 // single drainer goroutine
	if _, err := d.Subscribe(&dispatch.BatchConsumerFunc{
		ConsumerName: "sink",
		Fn:           func(ds []filtering.Delivery) { sunk += int64(len(ds)) },
	}, dispatch.All()); err != nil {
		panic(err)
	}
	d.Start()
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
		d.Dispatch(filtering.Delivery{Msg: wire.Message{Stream: streams[i]}})
	}
	res := measure("fanin", variant, dispatch.DefaultShards, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			d.Dispatch(filtering.Delivery{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(i)},
			})
		})
		d.Stop() // waits for the drainer: the cell includes the drain
	})
	return res
}

// benchRingEnqueueDrain is the raw primitive: publishers spin values
// into one ring.Ring while a drainer batch-consumes behind a Waiter.
// This path must stay at 0 allocs/op — Validate enforces it.
func benchRingEnqueueDrain(procs, msgs int) Result {
	r := ring.New[filtering.Delivery](8192)
	w := ring.NewWaiter()
	var drained int
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]filtering.Delivery, 64)
		for drained < msgs {
			n := r.DequeueBatch(buf)
			drained += n
			if n > 0 {
				continue
			}
			w.Prepare()
			if !r.Empty() {
				w.Cancel()
				continue
			}
			w.Wait()
		}
	}()
	del := filtering.Delivery{Msg: wire.Message{Stream: wire.MustStreamID(1, 0)}}
	res := measure("ring_enqueue_drain", "", 1, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			for !r.TryEnqueue(del) {
				r.TryDequeue() // drop-oldest, so the producer never stalls
			}
			w.Wake()
		})
		// Producers may have dropped entries; top the drainer up so it
		// always reaches msgs and exits.
		for {
			select {
			case <-done:
				return
			default:
				r.TryEnqueue(del)
				w.Wake()
			}
		}
	})
	<-done
	return res
}

// benchPipeline is ingest→dispatch end to end: receptions enter the
// filter (duplicate screening, per-stream state) and accepted
// deliveries fan out through the dispatcher, both tables at the swept
// shard count.
func benchPipeline(shards, procs, msgs int) Result {
	d := dispatch.New(dispatch.Options{Shards: shards})
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
		if _, err := d.Subscribe(&dispatch.ConsumerFunc{
			ConsumerName: fmt.Sprintf("c%d", i),
			Fn:           func(filtering.Delivery) {},
		}, dispatch.Exact(streams[i])); err != nil {
			panic(err)
		}
	}
	f := filtering.New(d.Dispatch, filtering.Options{Shards: shards})
	for p := range streams {
		f.Ingest(receiver.Reception{Msg: wire.Message{Stream: streams[p], Seq: 0}})
	}
	return measure("pipeline", "", shards, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			f.Ingest(receiver.Reception{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(i + 1)},
			})
		})
	})
}

// benchStoreTee is the retention tee: every publisher appends to its own
// stream. Steady-state Append is a 0-alloc path — Validate enforces it.
func benchStoreTee(shards, procs, msgs int) Result {
	st := store.New(store.Options{Shards: shards, MaxMessages: 1024})
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
	}
	// Warm per-stream rings past their growth phase.
	for p := range streams {
		for i := 0; i < 2048; i++ {
			st.Append(filtering.Delivery{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(i)},
			})
		}
	}
	return measure("store_tee", "", shards, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			st.Append(filtering.Delivery{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(2048 + i)},
			})
		})
	})
}

// benchControlSubmit is the return path's approved-no-change fast path:
// consumers re-asserting standing demands. 0 allocs/op — Validate
// enforces it.
func benchControlSubmit(shards, procs, msgs int) Result {
	rm := resource.NewWithOptions(resource.Options{Shards: shards})
	demands := make([]resource.Demand, publishers)
	for i := range demands {
		demands[i] = resource.Demand{
			Consumer: fmt.Sprintf("app%d", i),
			Target:   wire.MustStreamID(wire.SensorID(i+1), 0),
			Op:       wire.OpSetRate, Value: 2000,
		}
		if _, err := rm.Submit(demands[i]); err != nil {
			panic(err)
		}
	}
	return measure("control_submit", "", shards, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			if _, err := rm.Submit(demands[p]); err != nil {
				panic(err)
			}
		})
	})
}

// Run executes the full sweep and returns the two reports in
// BENCH_dispatch.json, BENCH_pipeline.json order.
func Run(opts Options) (dispatchReport, pipelineReport Report) {
	newReport := func(area string) Report {
		return Report{
			Schema:   Schema,
			Area:     area,
			Date:     time.Now().UTC().Format("2006-01-02"),
			Go:       runtime.Version(),
			HostCPUs: runtime.NumCPU(),
			Quick:    opts.Quick,
		}
	}
	msgs := opts.msgs()

	dr := newReport("dispatch")
	for _, shards := range opts.shardSweep() {
		for _, procs := range opts.procSweep() {
			res := benchDispatch(shards, procs, msgs)
			opts.logf("%s shards=%d procs=%d: %.0f ns/op, %.2f Mmsg/s", res.Path, shards, procs, res.NsPerOp, res.MsgsPerSec/1e6)
			dr.Results = append(dr.Results, res)
		}
	}
	for _, variant := range []string{"ring", "mutex"} {
		for _, procs := range opts.procSweep() {
			res := benchFanin(variant, procs, msgs)
			opts.logf("%s/%s procs=%d: %.0f ns/op, %.2f Mmsg/s", res.Path, variant, procs, res.NsPerOp, res.MsgsPerSec/1e6)
			dr.Results = append(dr.Results, res)
		}
	}
	for _, procs := range opts.procSweep() {
		res := benchRingEnqueueDrain(procs, msgs)
		opts.logf("%s procs=%d: %.0f ns/op, %.3f allocs/op", res.Path, procs, res.NsPerOp, res.AllocsPerOp)
		dr.Results = append(dr.Results, res)
	}

	pr := newReport("pipeline")
	for _, shards := range opts.shardSweep() {
		for _, procs := range opts.procSweep() {
			res := benchPipeline(shards, procs, msgs)
			opts.logf("%s shards=%d procs=%d: %.0f ns/op, %.2f Mmsg/s", res.Path, shards, procs, res.NsPerOp, res.MsgsPerSec/1e6)
			pr.Results = append(pr.Results, res)
		}
	}
	for _, shards := range opts.shardSweep() {
		for _, procs := range opts.procSweep() {
			res := benchStoreTee(shards, procs, msgs)
			opts.logf("%s shards=%d procs=%d: %.0f ns/op, %.3f allocs/op", res.Path, shards, procs, res.NsPerOp, res.AllocsPerOp)
			pr.Results = append(pr.Results, res)
		}
	}
	for _, shards := range opts.shardSweep() {
		for _, procs := range opts.procSweep() {
			res := benchControlSubmit(shards, procs, msgs)
			opts.logf("%s shards=%d procs=%d: %.0f ns/op, %.3f allocs/op", res.Path, shards, procs, res.NsPerOp, res.AllocsPerOp)
			pr.Results = append(pr.Results, res)
		}
	}
	return dr, pr
}

// Validate checks a report against the schema and the 0-alloc bars.
func Validate(r Report) error {
	if r.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", r.Schema, Schema)
	}
	if r.Area == "" || r.Date == "" || r.Go == "" || r.HostCPUs <= 0 {
		return fmt.Errorf("missing header fields: %+v", r)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("report %q has no results", r.Area)
	}
	for _, res := range r.Results {
		if res.Path == "" || res.Shards <= 0 || res.Procs <= 0 || res.Msgs <= 0 {
			return fmt.Errorf("malformed result: %+v", res)
		}
		if res.NsPerOp <= 0 || res.MsgsPerSec <= 0 {
			return fmt.Errorf("non-positive timing in result: %+v", res)
		}
		if zeroAllocPaths[res.Path] && res.AllocsPerOp > AllocTolerance {
			return fmt.Errorf("path %s (shards=%d procs=%d) allocates %.3f/op, bar is %.2f",
				res.Path, res.Shards, res.Procs, res.AllocsPerOp, AllocTolerance)
		}
	}
	return nil
}

// WriteReports runs the sweep, validates both reports and writes
// BENCH_dispatch.json and BENCH_pipeline.json into opts.OutDir,
// returning the two file paths.
func WriteReports(opts Options) (dispatchPath, pipelinePath string, err error) {
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return "", "", err
		}
	}
	dr, pr := Run(opts)
	if err := Validate(dr); err != nil {
		return "", "", fmt.Errorf("dispatch report invalid: %w", err)
	}
	if err := Validate(pr); err != nil {
		return "", "", fmt.Errorf("pipeline report invalid: %w", err)
	}
	write := func(name string, r Report) (string, error) {
		path := filepath.Join(opts.OutDir, name)
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return "", err
		}
		return path, os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if dispatchPath, err = write("BENCH_dispatch.json", dr); err != nil {
		return "", "", err
	}
	if pipelinePath, err = write("BENCH_pipeline.json", pr); err != nil {
		return "", "", err
	}
	return dispatchPath, pipelinePath, nil
}

// Package perfharness is the multicore performance harness behind
// `garnet-bench -perf`: it sweeps {table shards} × {GOMAXPROCS} over the
// hot paths the sharding era restructured — dispatch fan-out, the
// ingest→dispatch pipeline, the store tee and the control submit — plus
// the lock-free delivery ring against its retained mutex-queue twin and
// the batched ingest paths (multi-slot ring claims, shard-run store
// appends, the shard-grouped batched pipeline) swept across batch
// sizes — plus the archive tier's durable retention tee (append →
// seal → async spill → durable commit) and its cold-miss read path —
// and emits schema-stable BENCH_dispatch.json, BENCH_pipeline.json and
// BENCH_store.json so the perf trajectory of future PRs is measured,
// not asserted.
//
// Numbers are wall-clock and therefore host-dependent; the reports
// record GOMAXPROCS, the host CPU count and the date so a reader can
// tell a 1-core container run (procs > host_cpus: oversubscribed, ring
// vs mutex parity expected) from a real multicore run (the CI multicore
// job is the arbiter for scaling claims). Allocation counts are
// host-independent; Validate enforces the 0-alloc paths.
package perfharness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/ring"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/store/archive"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Schema identifies the report layout; bump only with a migration note
// in the README, because re-anchor tooling diffs these files across PRs.
const Schema = "garnet-bench-perf/v1"

// A scenario is one named sweep of the harness. The registry below is
// the single source of truth for the scenario list: Run executes it in
// order, Validate derives the 0-alloc bars from it, and Scenarios
// exposes it to cmd/garnet-bench and the harness tests — which
// previously duplicated the quick/full scenario lists as literals and
// let them drift.
type scenario struct {
	name string
	area string // which BENCH_*.json report the results land in
	// zeroAlloc holds the scenario's cells to 0 allocs/op, except cells
	// marked variant "serial": those run today's per-message comparator
	// path, which allocates by design.
	zeroAlloc bool
	run       func(o Options, emit func(Result))
}

var registry = []scenario{
	{"dispatch", "dispatch", false, runDispatch},
	{"fanin", "dispatch", false, runFanin},
	{"ring_enqueue_drain", "dispatch", true, runRingEnqueueDrain},
	{"ring_enqueue_n", "dispatch", true, runRingEnqueueN},
	{"pipeline", "pipeline", false, runPipeline},
	{"pipeline_batched", "pipeline", true, runPipelineBatched},
	{"store_tee", "pipeline", true, runStoreTee},
	{"store_append_batch", "pipeline", true, runStoreAppendBatch},
	{"control_submit", "pipeline", true, runControlSubmit},
	{"store_archive_spill", "store", true, runStoreArchiveSpill},
	{"store_archive_range", "store", false, runStoreArchiveRange},
}

func scenarioByName(name string) (scenario, bool) {
	for _, sc := range registry {
		if sc.name == name {
			return sc, true
		}
	}
	return scenario{}, false
}

// ScenarioInfo describes one registered scenario.
type ScenarioInfo struct {
	Name      string
	Area      string
	ZeroAlloc bool
}

// Scenarios lists the registered scenarios in execution order. Every
// derived scenario list (the `garnet-bench -perf` listing, the report
// tests) must come from here rather than a hand-maintained literal.
func Scenarios() []ScenarioInfo {
	out := make([]ScenarioInfo, len(registry))
	for i, sc := range registry {
		out[i] = ScenarioInfo{Name: sc.name, Area: sc.area, ZeroAlloc: sc.zeroAlloc}
	}
	return out
}

// AllocTolerance is the allocs/op ceiling for zeroAllocPaths.
const AllocTolerance = 0.05

// Result is one measured cell of a sweep.
type Result struct {
	Path        string  `json:"path"`              // which hot path
	Variant     string  `json:"variant,omitempty"` // e.g. ring vs mutex
	Shards      int     `json:"shards"`
	Procs       int     `json:"procs"` // GOMAXPROCS during the cell
	Publishers  int     `json:"publishers"`
	Batch       int     `json:"batch,omitempty"` // ingest batch size on batched scenarios
	Msgs        int     `json:"msgs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MsgsPerSec  float64 `json:"msgs_per_sec"`
}

// Report is one emitted BENCH_*.json document.
type Report struct {
	Schema   string   `json:"schema"`
	Area     string   `json:"area"`
	Date     string   `json:"date"`
	Go       string   `json:"go"`
	HostCPUs int      `json:"host_cpus"`
	Quick    bool     `json:"quick"`
	Results  []Result `json:"results"`
}

// Options configures a harness run.
type Options struct {
	// Quick shrinks the sweep (shards {1,16} × procs {1,4}, fewer
	// messages) for CI smoke jobs.
	Quick bool
	// OutDir receives BENCH_dispatch.json, BENCH_pipeline.json and
	// BENCH_store.json; empty means the current directory.
	OutDir string
	// Scenario, when non-empty, restricts the run to the one named
	// registry scenario — the local-iteration loop. The reports of the
	// other areas are then empty and are not written.
	Scenario string
	// Log, when non-nil, receives one line per measured cell.
	Log func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o Options) shardSweep() []int {
	if o.Quick {
		return []int{1, 16}
	}
	return []int{1, 4, 16}
}

func (o Options) procSweep() []int {
	if o.Quick {
		return []int{1, 4}
	}
	return []int{1, 2, 4, 8}
}

// batchSweep is the ingest batch sizes the batched scenarios sweep.
// batch=1 is the serial comparator cell, so every batched report
// carries its own baseline.
func (o Options) batchSweep() []int {
	return []int{1, 8, 64}
}

func (o Options) msgs() int {
	if o.Quick {
		return 20_000
	}
	return 200_000
}

// measure runs fn (which must process msgs messages) at the given
// GOMAXPROCS and returns the cell. Allocations are a runtime-global
// Mallocs delta, so concurrent drainer goroutines are inside the
// measurement — exactly what the 0-alloc enforcement wants.
func measure(path, variant string, shards, procs, publishers, msgs int, fn func()) Result {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(msgs)
	return Result{
		Path:        path,
		Variant:     variant,
		Shards:      shards,
		Procs:       procs,
		Publishers:  publishers,
		Msgs:        msgs,
		NsPerOp:     float64(dur.Nanoseconds()) / float64(msgs),
		AllocsPerOp: allocs,
		MsgsPerSec:  float64(msgs) / dur.Seconds(),
	}
}

// fanOut runs publishers goroutines, splitting msgs between them, each
// calling emit(publisher, i) for its share.
func fanOut(publishers, msgs int, emit func(p, i int)) {
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		n := msgs / publishers
		if p < msgs%publishers {
			n++
		}
		wg.Add(1)
		go func(p, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				emit(p, i)
			}
		}(p, n)
	}
	wg.Wait()
}

// fanOutBatches runs publishers goroutines, splitting msgs between
// them; each goroutine calls emit(p, start, n) once per run of up to
// batch messages, where start is the run's first message index within
// publisher p's share (the final run may be shorter).
func fanOutBatches(publishers, msgs, batch int, emit func(p, start, n int)) {
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		n := msgs / publishers
		if p < msgs%publishers {
			n++
		}
		wg.Add(1)
		go func(p, n int) {
			defer wg.Done()
			for sent := 0; sent < n; {
				b := batch
				if n-sent < b {
					b = n - sent
				}
				emit(p, sent, b)
				sent += b
			}
		}(p, n)
	}
	wg.Wait()
}

const publishers = 16

// benchDispatch is the synchronous fan-out path: 16 publishers on
// distinct sensors, one exact no-op subscriber per stream, sweeping the
// subscription-table shard count.
func benchDispatch(shards, procs, msgs int) Result {
	d := dispatch.New(dispatch.Options{Shards: shards})
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
		if _, err := d.Subscribe(&dispatch.ConsumerFunc{
			ConsumerName: fmt.Sprintf("c%d", i),
			Fn:           func(filtering.Delivery) {},
		}, dispatch.Exact(streams[i])); err != nil {
			panic(err)
		}
	}
	// Warm the stream-advertising maps so the measured window is steady
	// state.
	for p := range streams {
		d.Dispatch(filtering.Delivery{Msg: wire.Message{Stream: streams[p]}})
	}
	return measure("dispatch", "", shards, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			d.Dispatch(filtering.Delivery{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(i)},
			})
		})
	})
}

// benchFanin is the async many-to-one path the lock-free ring exists
// for: 16 publishers target one shared async consumer, so every enqueue
// lands on the same port. variant selects the ring or the retained
// mutex queue (Options.ForceLockedQueue); the measured window includes
// the drain, so msgs/s is end-to-end enqueue→consume.
func benchFanin(variant string, procs, msgs int) Result {
	d := dispatch.New(dispatch.Options{
		Mode:             dispatch.ModeAsync,
		QueueCapacity:    8192,
		ForceLockedQueue: variant == "mutex",
	})
	var sunk int64 // single drainer goroutine
	if _, err := d.Subscribe(&dispatch.BatchConsumerFunc{
		ConsumerName: "sink",
		Fn:           func(ds []filtering.Delivery) { sunk += int64(len(ds)) },
	}, dispatch.All()); err != nil {
		panic(err)
	}
	d.Start()
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
		d.Dispatch(filtering.Delivery{Msg: wire.Message{Stream: streams[i]}})
	}
	res := measure("fanin", variant, dispatch.DefaultShards, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			d.Dispatch(filtering.Delivery{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(i)},
			})
		})
		d.Stop() // waits for the drainer: the cell includes the drain
	})
	return res
}

// benchRingEnqueueDrain is the raw primitive: publishers spin values
// into one ring.Ring while a drainer batch-consumes behind a Waiter.
// This path must stay at 0 allocs/op — Validate enforces it.
func benchRingEnqueueDrain(procs, msgs int) Result {
	r := ring.New[filtering.Delivery](8192)
	w := ring.NewWaiter()
	var drained int
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]filtering.Delivery, 64)
		for drained < msgs {
			n := r.DequeueBatch(buf)
			drained += n
			if n > 0 {
				continue
			}
			w.Prepare()
			if !r.Empty() {
				w.Cancel()
				continue
			}
			w.Wait()
		}
	}()
	del := filtering.Delivery{Msg: wire.Message{Stream: wire.MustStreamID(1, 0)}}
	res := measure("ring_enqueue_drain", "", 1, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			for !r.TryEnqueue(del) {
				r.TryDequeue() // drop-oldest, so the producer never stalls
			}
			w.Wake()
		})
		// Producers may have dropped entries; top the drainer up so it
		// always reaches msgs and exits.
		for {
			select {
			case <-done:
				return
			default:
				r.TryEnqueue(del)
				w.Wake()
			}
		}
	})
	<-done
	return res
}

// benchRingEnqueueN is the multi-slot claim primitive behind batched
// dispatch: publishers claim runs of up to batch slots per TryEnqueueN
// call (one CAS per admitted run) while a drainer batch-consumes
// behind a Waiter. This path must stay at 0 allocs/op — Validate
// enforces it.
func benchRingEnqueueN(batch, procs, msgs int) Result {
	r := ring.New[filtering.Delivery](8192)
	w := ring.NewWaiter()
	var drained int
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]filtering.Delivery, 64)
		for drained < msgs {
			n := r.DequeueBatch(buf)
			drained += n
			if n > 0 {
				continue
			}
			w.Prepare()
			if !r.Empty() {
				w.Cancel()
				continue
			}
			w.Wait()
		}
	}()
	del := filtering.Delivery{Msg: wire.Message{Stream: wire.MustStreamID(1, 0)}}
	vals := make([][]filtering.Delivery, publishers)
	for p := range vals {
		vals[p] = make([]filtering.Delivery, batch)
		for i := range vals[p] {
			vals[p][i] = del
		}
	}
	res := measure("ring_enqueue_n", "", 1, procs, publishers, msgs, func() {
		fanOutBatches(publishers, msgs, batch, func(p, start, b int) {
			vs := vals[p][:b]
			for off := 0; off < b; {
				k := r.TryEnqueueN(vs[off:])
				if k == 0 {
					r.TryDequeue() // drop-oldest, so the producer never stalls
					continue
				}
				off += k
			}
			w.Wake()
		})
		// Producers may have dropped entries; top the drainer up so it
		// always reaches msgs and exits.
		for {
			select {
			case <-done:
				return
			default:
				r.TryEnqueue(del)
				w.Wake()
			}
		}
	})
	res.Batch = batch
	<-done
	return res
}

// benchPipeline is ingest→dispatch end to end: receptions enter the
// filter (duplicate screening, per-stream state) and accepted
// deliveries fan out through the dispatcher, both tables at the swept
// shard count.
func benchPipeline(shards, procs, msgs int) Result {
	d := dispatch.New(dispatch.Options{Shards: shards})
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
		if _, err := d.Subscribe(&dispatch.ConsumerFunc{
			ConsumerName: fmt.Sprintf("c%d", i),
			Fn:           func(filtering.Delivery) {},
		}, dispatch.Exact(streams[i])); err != nil {
			panic(err)
		}
	}
	f := filtering.New(d.Dispatch, filtering.Options{Shards: shards})
	for p := range streams {
		f.Ingest(receiver.Reception{Msg: wire.Message{Stream: streams[p], Seq: 0}})
	}
	return measure("pipeline", "", shards, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			f.Ingest(receiver.Reception{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(i + 1)},
			})
		})
	})
}

// benchPipelineBatched is the batched ingest→dispatch pipeline: each
// publisher ingests runs of batch receptions on its own stream through
// Filter.IngestBatch, with the filter's BatchSink feeding
// Dispatcher.DispatchBatch, so the whole shard-grouped chain (one
// filter-shard lock per batch, one wildcard snapshot and one
// subscriber resolution per stream run) sits inside the measured
// window. The batch=1 cell is the serial comparator: it runs today's
// per-message Ingest→Dispatch path under variant "serial", which is
// exempt from the 0-alloc bar (serial Dispatch builds its target slice
// per message by design); batched cells must not allocate.
func benchPipelineBatched(batch, shards, procs, msgs int) Result {
	d := dispatch.New(dispatch.Options{Shards: shards})
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
		if _, err := d.Subscribe(&dispatch.ConsumerFunc{
			ConsumerName: fmt.Sprintf("c%d", i),
			Fn:           func(filtering.Delivery) {},
		}, dispatch.Exact(streams[i])); err != nil {
			panic(err)
		}
	}
	variant := "batched"
	fopts := filtering.Options{Shards: shards}
	if batch > 1 {
		fopts.BatchSink = d.DispatchBatch
	} else {
		variant = "serial"
	}
	f := filtering.New(d.Dispatch, fopts)
	for p := range streams {
		f.Ingest(receiver.Reception{Msg: wire.Message{Stream: streams[p], Seq: 0}})
	}
	bufs := make([][]receiver.Reception, publishers)
	for p := range bufs {
		bufs[p] = make([]receiver.Reception, batch)
	}
	res := measure("pipeline_batched", variant, shards, procs, publishers, msgs, func() {
		fanOutBatches(publishers, msgs, batch, func(p, start, b int) {
			buf := bufs[p][:b]
			for i := range buf {
				buf[i] = receiver.Reception{
					Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(start + i + 1)},
				}
			}
			if batch > 1 {
				f.IngestBatch(buf)
			} else {
				f.Ingest(buf[0])
			}
		})
	})
	res.Batch = batch
	return res
}

// benchStoreTee is the retention tee: every publisher appends to its own
// stream. Steady-state Append is a 0-alloc path — Validate enforces it.
func benchStoreTee(shards, procs, msgs int) Result {
	st := store.New(store.Options{Shards: shards, MaxMessages: 1024})
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
	}
	// Warm per-stream rings past their growth phase.
	for p := range streams {
		for i := 0; i < 2048; i++ {
			st.Append(filtering.Delivery{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(i)},
			})
		}
	}
	return measure("store_tee", "", shards, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			st.Append(filtering.Delivery{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(2048 + i)},
			})
		})
	})
}

// benchStoreAppendBatch is the retention tee through the batched API:
// every publisher appends runs of batch deliveries to its own stream
// via AppendBatch — one shard lock per run, StoreSeq stamped in place.
// Steady state must stay at 0 allocs/op — Validate enforces it.
func benchStoreAppendBatch(batch, shards, procs, msgs int) Result {
	st := store.New(store.Options{Shards: shards, MaxMessages: 1024})
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
	}
	// Warm per-stream rings past their growth phase.
	for p := range streams {
		for i := 0; i < 2048; i++ {
			st.Append(filtering.Delivery{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(i)},
			})
		}
	}
	bufs := make([][]filtering.Delivery, publishers)
	for p := range bufs {
		bufs[p] = make([]filtering.Delivery, batch)
	}
	res := measure("store_append_batch", "", shards, procs, publishers, msgs, func() {
		fanOutBatches(publishers, msgs, batch, func(p, start, b int) {
			buf := bufs[p][:b]
			for i := range buf {
				buf[i] = filtering.Delivery{
					Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(2048 + start + i)},
				}
			}
			st.AppendBatch(buf)
		})
	})
	res.Batch = batch
	return res
}

// benchStoreArchiveSpill is the durable retention tee: every publisher
// appends to its own stream while a 1-byte cold budget pushes every
// sealed block except the newest through the async archiver into an
// in-memory backend, and the closing drain sits inside the measured
// window — the cell is end-to-end append→seal→spill→durable-commit.
// The append path must stay at 0 allocs/op with the archiver enabled —
// Validate enforces it (the amortised seal/spill cost rides inside the
// same AllocTolerance bar).
func benchStoreArchiveSpill(shards, procs, msgs int) Result {
	st := store.New(store.Options{
		Shards: shards, MaxMessages: 1024,
		Codec: "raw", BlockSize: 256, ColdBudget: 1,
		Archive: archive.NewMem(),
	})
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
	}
	// Warm past the growth phases of every tier: ring spans, the seal
	// buffers, the pending-spill slices and the backend's per-stream
	// state all reach steady capacity before the window opens.
	for p := range streams {
		for i := 0; i < 4096; i++ {
			st.Append(filtering.Delivery{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(i)},
			})
		}
	}
	return measure("store_archive_spill", "", shards, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			st.Append(filtering.Delivery{
				Msg: wire.Message{Stream: streams[p], Seq: wire.Seq(4096 + i)},
			})
		})
		st.Close() // waits for the archivers: the cell includes the drain
	})
}

// benchStoreArchiveRange is the cold-miss read path: each stream keeps
// a 128-message hot window while the rest of its 4096-message history
// lives in archived blocks, and every publisher-turned-reader replays
// its full archive→cold→hot span through RangeFunc until its share of
// the message budget is consumed. Decode scratch is pooled but the
// path is not held to the 0-alloc bar.
func benchStoreArchiveRange(shards, procs, msgs int) Result {
	st := store.New(store.Options{
		Shards: shards, MaxMessages: 128,
		Codec: "raw", BlockSize: 64, ColdBudget: 1,
		Archive: archive.NewMem(), ArchiveSync: true,
	})
	defer st.Close()
	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
		for seq := 0; seq < 4096; seq++ {
			st.Append(filtering.Delivery{
				Msg: wire.Message{Stream: streams[i], Seq: wire.Seq(seq)},
			})
		}
	}
	return measure("store_archive_range", "", shards, procs, publishers, msgs, func() {
		var wg sync.WaitGroup
		for p := 0; p < publishers; p++ {
			n := msgs / publishers
			if p < msgs%publishers {
				n++
			}
			wg.Add(1)
			go func(p, n int) {
				defer wg.Done()
				for n > 0 {
					st.RangeFunc(streams[p], 0, ^uint64(0), func(d filtering.Delivery) bool {
						n--
						return n > 0
					})
				}
			}(p, n)
		}
		wg.Wait()
	})
}

// benchControlSubmit is the return path's approved-no-change fast path:
// consumers re-asserting standing demands. 0 allocs/op — Validate
// enforces it.
func benchControlSubmit(shards, procs, msgs int) Result {
	rm := resource.NewWithOptions(resource.Options{Shards: shards})
	demands := make([]resource.Demand, publishers)
	for i := range demands {
		demands[i] = resource.Demand{
			Consumer: fmt.Sprintf("app%d", i),
			Target:   wire.MustStreamID(wire.SensorID(i+1), 0),
			Op:       wire.OpSetRate, Value: 2000,
		}
		if _, err := rm.Submit(demands[i]); err != nil {
			panic(err)
		}
	}
	return measure("control_submit", "", shards, procs, publishers, msgs, func() {
		fanOut(publishers, msgs, func(p, i int) {
			if _, err := rm.Submit(demands[p]); err != nil {
				panic(err)
			}
		})
	})
}

// Per-scenario sweeps, one wrapper per registry entry.

func runDispatch(o Options, emit func(Result)) {
	for _, shards := range o.shardSweep() {
		for _, procs := range o.procSweep() {
			emit(benchDispatch(shards, procs, o.msgs()))
		}
	}
}

func runFanin(o Options, emit func(Result)) {
	for _, variant := range []string{"ring", "mutex"} {
		for _, procs := range o.procSweep() {
			emit(benchFanin(variant, procs, o.msgs()))
		}
	}
}

func runRingEnqueueDrain(o Options, emit func(Result)) {
	for _, procs := range o.procSweep() {
		emit(benchRingEnqueueDrain(procs, o.msgs()))
	}
}

func runRingEnqueueN(o Options, emit func(Result)) {
	for _, batch := range o.batchSweep() {
		for _, procs := range o.procSweep() {
			emit(benchRingEnqueueN(batch, procs, o.msgs()))
		}
	}
}

func runPipeline(o Options, emit func(Result)) {
	for _, shards := range o.shardSweep() {
		for _, procs := range o.procSweep() {
			emit(benchPipeline(shards, procs, o.msgs()))
		}
	}
}

func runPipelineBatched(o Options, emit func(Result)) {
	for _, batch := range o.batchSweep() {
		for _, shards := range o.shardSweep() {
			for _, procs := range o.procSweep() {
				emit(benchPipelineBatched(batch, shards, procs, o.msgs()))
			}
		}
	}
}

func runStoreTee(o Options, emit func(Result)) {
	for _, shards := range o.shardSweep() {
		for _, procs := range o.procSweep() {
			emit(benchStoreTee(shards, procs, o.msgs()))
		}
	}
}

func runStoreAppendBatch(o Options, emit func(Result)) {
	for _, batch := range o.batchSweep() {
		for _, shards := range o.shardSweep() {
			for _, procs := range o.procSweep() {
				emit(benchStoreAppendBatch(batch, shards, procs, o.msgs()))
			}
		}
	}
}

func runControlSubmit(o Options, emit func(Result)) {
	for _, shards := range o.shardSweep() {
		for _, procs := range o.procSweep() {
			emit(benchControlSubmit(shards, procs, o.msgs()))
		}
	}
}

func runStoreArchiveSpill(o Options, emit func(Result)) {
	for _, shards := range o.shardSweep() {
		for _, procs := range o.procSweep() {
			emit(benchStoreArchiveSpill(shards, procs, o.msgs()))
		}
	}
}

func runStoreArchiveRange(o Options, emit func(Result)) {
	for _, shards := range o.shardSweep() {
		for _, procs := range o.procSweep() {
			emit(benchStoreArchiveRange(shards, procs, o.msgs()))
		}
	}
}

// Run executes every registered scenario in order and returns the
// three reports in BENCH_dispatch.json, BENCH_pipeline.json,
// BENCH_store.json order.
func Run(opts Options) (dispatchReport, pipelineReport, storeReport Report) {
	newReport := func(area string) Report {
		return Report{
			Schema:   Schema,
			Area:     area,
			Date:     time.Now().UTC().Format("2006-01-02"),
			Go:       runtime.Version(),
			HostCPUs: runtime.NumCPU(),
			Quick:    opts.Quick,
		}
	}
	dr := newReport("dispatch")
	pr := newReport("pipeline")
	sr := newReport("store")
	for _, sc := range registry {
		if opts.Scenario != "" && sc.name != opts.Scenario {
			continue
		}
		rep := &dr
		switch sc.area {
		case "pipeline":
			rep = &pr
		case "store":
			rep = &sr
		}
		sc.run(opts, func(res Result) {
			cell := res.Path
			if res.Variant != "" {
				cell += "/" + res.Variant
			}
			batch := ""
			if res.Batch > 0 {
				batch = fmt.Sprintf(" batch=%d", res.Batch)
			}
			opts.logf("%s shards=%d procs=%d%s: %.0f ns/op, %.2f Mmsg/s, %.3f allocs/op",
				cell, res.Shards, res.Procs, batch, res.NsPerOp, res.MsgsPerSec/1e6, res.AllocsPerOp)
			rep.Results = append(rep.Results, res)
		})
	}
	return dr, pr, sr
}

// Validate checks a report against the schema and the 0-alloc bars.
func Validate(r Report) error {
	if r.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", r.Schema, Schema)
	}
	if r.Area == "" || r.Date == "" || r.Go == "" || r.HostCPUs <= 0 {
		return fmt.Errorf("missing header fields: %+v", r)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("report %q has no results", r.Area)
	}
	for _, res := range r.Results {
		if res.Path == "" || res.Shards <= 0 || res.Procs <= 0 || res.Msgs <= 0 {
			return fmt.Errorf("malformed result: %+v", res)
		}
		if res.NsPerOp <= 0 || res.MsgsPerSec <= 0 {
			return fmt.Errorf("non-positive timing in result: %+v", res)
		}
		sc, known := scenarioByName(res.Path)
		if !known {
			return fmt.Errorf("result path %q is not a registered scenario", res.Path)
		}
		// Variant "serial" marks a batched scenario's per-message
		// comparator cell; that path allocates by design.
		if sc.zeroAlloc && res.Variant != "serial" && res.AllocsPerOp > AllocTolerance {
			return fmt.Errorf("path %s (shards=%d procs=%d batch=%d) allocates %.3f/op, bar is %.2f",
				res.Path, res.Shards, res.Procs, res.Batch, res.AllocsPerOp, AllocTolerance)
		}
	}
	return nil
}

// Delta is one matched cell of Compare: msgs/s for the same scenario
// cell in a baseline report and a fresh run.
type Delta struct {
	Key      string  // "path[/variant] shards=S procs=P[ batch=B]"
	Baseline float64 // baseline msgs/s
	Current  float64 // fresh msgs/s
	Pct      float64 // 100 * (Current - Baseline) / Baseline
}

func cellKey(res Result) string {
	key := res.Path
	if res.Variant != "" {
		key += "/" + res.Variant
	}
	key += fmt.Sprintf(" shards=%d procs=%d", res.Shards, res.Procs)
	if res.Batch > 0 {
		key += fmt.Sprintf(" batch=%d", res.Batch)
	}
	return key
}

// Compare matches every cell of current against baseline by scenario
// key and reports the msgs/s delta for cells present in both, in
// current-report order. Cells only one side has (new scenarios,
// changed sweeps) are skipped, so a baseline committed by an older
// revision stays usable. Message counts are deliberately not part of
// the key: comparing a -quick run against a full baseline is allowed,
// the deltas are just noisier.
func Compare(baseline, current Report) []Delta {
	base := make(map[string]Result, len(baseline.Results))
	for _, res := range baseline.Results {
		base[cellKey(res)] = res
	}
	var out []Delta
	for _, res := range current.Results {
		b, ok := base[cellKey(res)]
		if !ok || b.MsgsPerSec <= 0 {
			continue
		}
		out = append(out, Delta{
			Key:      cellKey(res),
			Baseline: b.MsgsPerSec,
			Current:  res.MsgsPerSec,
			Pct:      100 * (res.MsgsPerSec - b.MsgsPerSec) / b.MsgsPerSec,
		})
	}
	return out
}

// WriteReports runs the sweep, validates the resulting reports and
// writes BENCH_dispatch.json, BENCH_pipeline.json and BENCH_store.json
// into opts.OutDir, returning the three file paths. With
// Options.Scenario set, the areas the scenario does not feed produce no
// results; those reports are skipped (their returned paths are empty)
// rather than overwriting a committed full report with an empty one.
func WriteReports(opts Options) (dispatchPath, pipelinePath, storePath string, err error) {
	if opts.Scenario != "" {
		if _, ok := scenarioByName(opts.Scenario); !ok {
			var names []string
			for _, sc := range registry {
				names = append(names, sc.name)
			}
			return "", "", "", fmt.Errorf("unknown scenario %q (have %v)", opts.Scenario, names)
		}
	}
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return "", "", "", err
		}
	}
	dr, pr, sr := Run(opts)
	write := func(name string, r Report) (string, error) {
		if opts.Scenario != "" && len(r.Results) == 0 {
			return "", nil
		}
		if err := Validate(r); err != nil {
			return "", fmt.Errorf("%s report invalid: %w", r.Area, err)
		}
		path := filepath.Join(opts.OutDir, name)
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return "", err
		}
		return path, os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if dispatchPath, err = write("BENCH_dispatch.json", dr); err != nil {
		return "", "", "", err
	}
	if pipelinePath, err = write("BENCH_pipeline.json", pr); err != nil {
		return "", "", "", err
	}
	if storePath, err = write("BENCH_store.json", sr); err != nil {
		return "", "", "", err
	}
	return dispatchPath, pipelinePath, storePath, nil
}

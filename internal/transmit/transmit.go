// Package transmit implements the transmitter array of §4.2: the fixed
// network elements that broadcast approved, replicated control messages
// into the wireless downlink, “whereupon [they] may be received by the
// sensor node”.
package transmit

import (
	"fmt"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/radio"
)

// Config configures a Transmitter.
type Config struct {
	Name     string
	Position geo.Point
	Range    float64 // broadcast range, metres
}

// Transmitter broadcasts control frames over the downlink band.
type Transmitter struct {
	cfg      Config
	medium   *radio.Medium
	coverage geo.Circle // precomputed: Coverage sits on the replicator's selection path

	broadcasts metrics.Counter
	bytes      metrics.Counter
}

// Stats is a snapshot of a transmitter's counters.
type Stats struct {
	Broadcasts int64
	Bytes      int64
}

// New creates a Transmitter. New panics on a non-positive range (a
// configuration programming error).
func New(medium *radio.Medium, cfg Config) *Transmitter {
	if cfg.Range <= 0 {
		panic("transmit: range must be positive")
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("tx@%s", cfg.Position)
	}
	return &Transmitter{
		cfg:      cfg,
		medium:   medium,
		coverage: geo.Circle{Center: cfg.Position, R: cfg.Range},
	}
}

// Name returns the transmitter's name.
func (t *Transmitter) Name() string { return t.cfg.Name }

// Coverage returns the area this transmitter can reach.
func (t *Transmitter) Coverage() geo.Circle { return t.coverage }

// Broadcast sends one frame into the downlink.
func (t *Transmitter) Broadcast(frame []byte) {
	t.broadcasts.Inc()
	t.bytes.Add(int64(len(frame)))
	t.medium.Broadcast(radio.BandDownlink, t.cfg.Position, t.cfg.Range, frame)
}

// Stats returns a snapshot of the transmitter's counters.
func (t *Transmitter) Stats() Stats {
	return Stats{Broadcasts: t.broadcasts.Value(), Bytes: t.bytes.Value()}
}

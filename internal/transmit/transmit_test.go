package transmit

import (
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/sim"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

func TestBroadcastReachesDownlinkListeners(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	var heard [][]byte
	medium.Attach(radio.BandDownlink, &radio.Listener{
		Name:     "sensor",
		Position: func() geo.Point { return geo.Pt(50, 0) },
		Radius:   1e6,
		Deliver:  func(f radio.Frame) { heard = append(heard, f.Data) },
	})
	// Nothing on the uplink band must hear transmitters.
	uplinkHeard := 0
	medium.Attach(radio.BandUplink, &radio.Listener{
		Name:     "rx",
		Position: func() geo.Point { return geo.Pt(50, 0) },
		Radius:   1e6,
		Deliver:  func(radio.Frame) { uplinkHeard++ },
	})

	tx := New(medium, Config{Name: "tx", Position: geo.Pt(0, 0), Range: 100})
	tx.Broadcast([]byte("ctrl-frame"))
	clock.RunAll()

	if len(heard) != 1 || string(heard[0]) != "ctrl-frame" {
		t.Fatalf("downlink heard %d frames", len(heard))
	}
	if uplinkHeard != 0 {
		t.Fatal("transmitter leaked onto the uplink band")
	}
	if st := tx.Stats(); st.Broadcasts != 1 || st.Bytes != int64(len("ctrl-frame")) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRangeLimitsDelivery(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	heard := 0
	medium.Attach(radio.BandDownlink, &radio.Listener{
		Name:     "far-sensor",
		Position: func() geo.Point { return geo.Pt(500, 0) },
		Radius:   1e6,
		Deliver:  func(radio.Frame) { heard++ },
	})
	tx := New(medium, Config{Position: geo.Pt(0, 0), Range: 100})
	tx.Broadcast([]byte("x"))
	clock.RunAll()
	if heard != 0 {
		t.Fatal("broadcast exceeded transmitter range")
	}
}

func TestCoverageAndName(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	tx := New(medium, Config{Name: "north", Position: geo.Pt(1, 2), Range: 30})
	if tx.Name() != "north" {
		t.Fatalf("Name = %q", tx.Name())
	}
	want := geo.Circle{Center: geo.Pt(1, 2), R: 30}
	if tx.Coverage() != want {
		t.Fatalf("Coverage = %+v", tx.Coverage())
	}
	anon := New(medium, Config{Position: geo.Pt(0, 0), Range: 1})
	if anon.Name() == "" {
		t.Fatal("default name empty")
	}
}

func TestNewValidatesRange(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	for _, r := range []float64{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v accepted", r)
				}
			}()
			New(medium, Config{Position: geo.Pt(0, 0), Range: r})
		}()
	}
}

package actuation

import (
	"sync"
	"time"
	"unsafe"

	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// ashard is one partition of the outstanding-request table. The partition
// key is the sensor component of the request's target StreamID (the
// shared wire.SensorID.Shard function), and each shard owns a contiguous
// sub-space of the 16-bit wire update-id: the top bits name the shard,
// the low bits count within it. An ack therefore routes back to its home
// shard from the id alone — no global table, no second lock.
type ashard struct {
	base uint16 // shard index shifted into the top id bits
	mask uint16 // low-bit mask of the shard's id sub-space

	mu sync.Mutex
	// nextID counts within the sub-space; allocation skips ids still
	// outstanding, so wrap-around reuses only acked/expired ids.
	nextID      uint16
	outstanding map[uint16]*pending // full wire id → request
	coal        map[coalKey]*coalEntry
	stopped     bool
	// lastStamp is the shard's previous wire issue timestamp; see
	// stampLocked.
	lastStamp time.Time

	// Hot-path counters are plain ints mutated only under mu; Stats sums
	// them per shard.
	issued     int64
	acked      int64
	expired    int64
	cancelled  int64
	superseded int64
	retries    int64
	dupAcks    int64
	coalesced  int64

	// latency records this shard's request→ack latencies, so an ack never
	// crosses into another shard's state; Service.Latency merges on read.
	latency metrics.Histogram
}

// paddedAShard rounds an ashard up to whole cache lines, keeping at
// least 8 bytes of trailing padding, so live fields of adjacent shards
// in the contiguous backing array never share a line even when the
// runtime's 8-byte allocation header shifts the array base off line
// alignment (see the dispatch package's paddedShard for the full
// rationale).
type paddedAShard struct {
	ashard
	_ [(unsafe.Sizeof(ashard{})+metrics.CacheLine+7)/metrics.CacheLine*metrics.CacheLine - unsafe.Sizeof(ashard{})]byte
}

type pending struct {
	req      Request
	issuedAt time.Time // for latency measurement
	stamp    time.Time // wire issue timestamp, strictly ordered per shard
	attempts int
	done     func(Result)
	// timer is the cancellation handle of the armed retry/expiry timer on
	// real clocks (nil on the pooled virtual-clock path, where stale
	// fires are screened by generation checks instead): an ack stops the
	// timer immediately rather than retaining this record until the dead
	// timer fires.
	timer sim.Timer
}

// stampLocked returns a strictly-increasing wire issue timestamp for this
// shard: now, pushed one µs (the wire timestamp's precision) past the
// previous stamp when the clock has not advanced. Distinct requests in a
// shard therefore never tie, so the device's apply-in-issue-order
// staleness guard totally orders competing settings even for flips
// within one clock instant; retransmissions of one request reuse its
// stamp and still re-ack. Caller holds sh.mu.
func (sh *ashard) stampLocked(now time.Time) time.Time {
	// Quantize to the wire precision first: two real-clock instants
	// within one µs would otherwise compare After here yet encode to the
	// identical wire value, resurrecting the tie this function exists to
	// break.
	now = now.Truncate(time.Microsecond)
	if !now.After(sh.lastStamp) {
		now = sh.lastStamp.Add(time.Microsecond)
	}
	sh.lastStamp = now
	return now
}

// coalKey identifies the sensor setting a request competes for — requests
// with the same key within a coalescing window collapse into one
// actuation.
type coalKey struct {
	target wire.StreamID
	class  resource.Class
}

// coalesceKeyOf returns the coalescing key for a request; ok is false for
// operations that need no mediation and must never coalesce (ping,
// device params). The key's class is resource.ClassOf's, so the two
// layers always agree on which operations compete for one setting.
func coalesceKeyOf(req Request) (coalKey, bool) {
	class, ok := resource.ClassOf(req.Op)
	if !ok {
		return coalKey{}, false
	}
	return coalKey{target: req.Target, class: class}, true
}

// coalEntry is an open coalescing window for one key. held is the latest
// request absorbed since the window opened; it is issued when the window
// closes. lastID/lastP remember the key's most recently transmitted
// request so the trailing actuation can supersede its retries — without
// this, a lost first transmission would be retried after the newer value
// and revert the sensor.
type coalEntry struct {
	held   *heldRequest
	lastID uint16
	lastP  *pending
}

type heldRequest struct {
	req  Request
	done func(Result)
}

// completeHeld resolves a held request's callback without an update id
// (it was never issued).
func completeHeld(h *heldRequest, o Outcome) {
	if h != nil && h.done != nil {
		h.done(Result{Request: h.req, Outcome: o})
	}
}

// shardFor picks a target's home shard.
func (s *Service) shardFor(target wire.StreamID) *ashard {
	return s.shards[target.Sensor().Shard(len(s.shards))]
}

// shardForID routes an update id back to the shard that allocated it.
func (s *Service) shardForID(id uint16) *ashard {
	return s.shards[int(id>>s.idBits)]
}

// allocateLocked hands out the next free id in the shard's sub-space,
// skipping ids still outstanding so wrap-around never double-books a
// pending request. Wire id 0 is never allocated — Result reserves it for
// requests that were never transmitted — so shard 0's sub-space holds
// one id fewer. ok is false when the whole sub-space is outstanding.
// Caller holds sh.mu.
func (sh *ashard) allocateLocked() (uint16, bool) {
	space := int(sh.mask) + 1
	for i := 0; i < space; i++ {
		sh.nextID = (sh.nextID + 1) & sh.mask
		id := sh.base | sh.nextID
		if id == 0 {
			continue
		}
		if _, inUse := sh.outstanding[id]; !inUse {
			return id, true
		}
	}
	return 0, false
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

package actuation

import (
	"errors"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

var pingReq = Request{Target: wire.MustStreamID(5, 0), Op: wire.OpPing, Consumer: "app"}

func TestIssueSendsStampedControl(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var sent []wire.ControlMessage
	s := NewService(clock, func(c wire.ControlMessage) { sent = append(sent, c) }, Options{})

	req := Request{Target: wire.MustStreamID(5, 2), Op: wire.OpSetRate, Value: 2000, Consumer: "app"}
	id, err := s.Issue(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) != 1 {
		t.Fatalf("sent %d, want 1", len(sent))
	}
	c := sent[0]
	if c.UpdateID != id || c.Target != req.Target || c.Op != req.Op || c.Value != req.Value {
		t.Fatalf("control = %+v", c)
	}
	if !c.Issued.Equal(epoch) {
		t.Fatalf("timestamp = %v, want %v", c.Issued, epoch)
	}
	// The frame must round-trip through the checksum-validated codec.
	frame, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeControl(frame); err != nil {
		t.Fatalf("checksummed frame invalid: %v", err)
	}
}

func TestAckCompletesWithLatency(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var sent []wire.ControlMessage
	s := NewService(clock, func(c wire.ControlMessage) { sent = append(sent, c) }, Options{})

	var result Result
	id, err := s.Issue(pingReq, func(r Result) { result = r })
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(300 * time.Millisecond)
	s.HandleAck(id, clock.Now())

	if result.Outcome != OutcomeAcked || result.UpdateID != id {
		t.Fatalf("result = %+v", result)
	}
	if result.Latency != 300*time.Millisecond {
		t.Fatalf("latency = %v", result.Latency)
	}
	if s.Outstanding() != 0 {
		t.Fatal("request still outstanding after ack")
	}
	// No retries after ack.
	clock.Advance(time.Minute)
	if len(sent) != 1 {
		t.Fatalf("retransmitted after ack: %d sends", len(sent))
	}
}

func TestRetriesUntilAck(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	sendCount := 0
	s := NewService(clock, func(wire.ControlMessage) { sendCount++ }, Options{RetryInterval: time.Second, MaxAttempts: 5})

	id, err := s.Issue(pingReq, nil)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2500 * time.Millisecond) // two retries fire
	if sendCount != 3 {
		t.Fatalf("sends = %d, want 3", sendCount)
	}
	s.HandleAck(id, clock.Now())
	clock.Advance(time.Minute)
	if sendCount != 3 {
		t.Fatalf("sends after ack = %d, want 3", sendCount)
	}
	if got := s.Stats().Retries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

func TestExpiresAfterMaxAttempts(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	sendCount := 0
	s := NewService(clock, func(wire.ControlMessage) { sendCount++ }, Options{RetryInterval: time.Second, MaxAttempts: 3})

	var result Result
	if _, err := s.Issue(pingReq, func(r Result) { result = r }); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	if sendCount != 3 {
		t.Fatalf("sends = %d, want exactly MaxAttempts=3", sendCount)
	}
	if result.Outcome != OutcomeExpired || result.Attempts != 3 {
		t.Fatalf("result = %+v", result)
	}
	if s.Outstanding() != 0 {
		t.Fatal("expired request still outstanding")
	}
}

func TestDuplicateAckIgnored(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := NewService(clock, func(wire.ControlMessage) {}, Options{})
	calls := 0
	id, err := s.Issue(pingReq, func(Result) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	s.HandleAck(id, clock.Now())
	s.HandleAck(id, clock.Now())
	s.HandleAck(9999, clock.Now()) // never issued
	if calls != 1 {
		t.Fatalf("done called %d times, want 1", calls)
	}
	if got := s.Stats().DuplicateAcks; got != 2 {
		t.Fatalf("duplicate acks = %d, want 2", got)
	}
}

func TestUpdateIDsUnique(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := NewService(clock, func(wire.ControlMessage) {}, Options{})
	seen := map[uint16]bool{}
	for i := 0; i < 1000; i++ {
		id, err := s.Issue(pingReq, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("update id %d reused while outstanding", id)
		}
		seen[id] = true
	}
	if s.Outstanding() != 1000 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}
}

func TestIssueInvalidOp(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := NewService(clock, func(wire.ControlMessage) {}, Options{})
	if _, err := s.Issue(Request{Target: wire.MustStreamID(1, 0), Op: 0}, nil); err == nil {
		t.Fatal("want error for invalid op")
	}
}

func TestStopCancelsOutstanding(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := NewService(clock, func(wire.ControlMessage) {}, Options{})
	var result Result
	if _, err := s.Issue(pingReq, func(r Result) { result = r }); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	s.Stop() // idempotent
	if result.Outcome != OutcomeCancelled {
		t.Fatalf("result = %+v", result)
	}
	if _, err := s.Issue(pingReq, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("Issue after Stop: %v", err)
	}
	// Pending retries must not fire after Stop.
	clock.Advance(time.Hour)
	if got := s.Stats().Retries; got != 0 {
		t.Fatalf("retries after stop = %d", got)
	}
}

func TestLatencyHistogramRecordsAcks(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := NewService(clock, func(wire.ControlMessage) {}, Options{})
	for i := 1; i <= 4; i++ {
		id, err := s.Issue(pingReq, nil)
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Duration(i) * 100 * time.Millisecond)
		s.HandleAck(id, clock.Now())
	}
	h := s.Latency()
	if h.Count() != 4 {
		t.Fatalf("latency samples = %d, want 4", h.Count())
	}
	if h.Mean() != 250 { // (100+200+300+400)/4 ms
		t.Fatalf("mean latency = %v ms, want 250", h.Mean())
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeAcked: "acked", OutcomeExpired: "expired", OutcomeCancelled: "cancelled", Outcome(9): "outcome(?)",
	} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, got, want)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := NewService(clock, func(wire.ControlMessage) {}, Options{RetryInterval: time.Second, MaxAttempts: 2})
	idAcked, err := s.Issue(pingReq, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.HandleAck(idAcked, clock.Now())
	if _, err := s.Issue(pingReq, nil); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute) // second request expires
	st := s.Stats()
	if st.Issued != 2 || st.Acked != 1 || st.Expired != 1 || st.Outstanding != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

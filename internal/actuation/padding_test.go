package actuation

import (
	"testing"
	"unsafe"

	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// TestShardPadding pins the anti-false-sharing layout of the
// outstanding-request shard table; see the dispatch package's test of
// the same name.
func TestShardPadding(t *testing.T) {
	sz, live := unsafe.Sizeof(paddedAShard{}), unsafe.Sizeof(ashard{})
	if sz%metrics.CacheLine != 0 {
		t.Fatalf("paddedAShard size %d is not a multiple of %d", sz, metrics.CacheLine)
	}
	if sz-live < 8 {
		t.Fatalf("tail padding %d < 8: a shifted array base could share a boundary line", sz-live)
	}
	s := NewService(sim.NewVirtualClock(epoch), func(wire.ControlMessage) {}, Options{Shards: 4})
	addrs := make([]uintptr, len(s.shards))
	for i, sh := range s.shards {
		addrs[i] = uintptr(unsafe.Pointer(sh))
	}
	if msg := metrics.VerifyPadding(addrs, live); msg != "" {
		t.Fatal(msg)
	}
}

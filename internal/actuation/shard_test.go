package actuation

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// With 256 shards each id sub-space holds 256 ids, so wrap-around and
// saturation are cheap to reach.
func shardOptions() Options {
	return Options{Shards: 256, RetryInterval: time.Hour, MaxAttempts: 1}
}

// The id allocator must skip ids still outstanding when the sub-space
// wraps, reusing only acked ids, and saturate exactly when every id of
// the target's shard is outstanding.
func TestIDWrapSkipsOutstanding(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := NewService(clock, func(wire.ControlMessage) {}, shardOptions())

	target := wire.MustStreamID(42, 0)
	req := Request{Target: target, Op: wire.OpPing, Consumer: "app"}

	// Shard 0's sub-space is one smaller: wire id 0 is never allocated
	// (Result reserves it for never-transmitted requests).
	capacity := 256
	if s.shardFor(target).base == 0 {
		capacity = 255
	}
	ids := make([]uint16, 0, capacity)
	for i := 0; i < capacity; i++ {
		id, err := s.Issue(req, nil)
		if err != nil {
			t.Fatalf("issue %d: %v", i, err)
		}
		if id == 0 {
			t.Fatal("allocated reserved wire id 0")
		}
		ids = append(ids, id)
	}
	// The whole sub-space shares the shard's top bits.
	for _, id := range ids {
		if id>>8 != ids[0]>>8 {
			t.Fatalf("id %#04x escaped the shard of %#04x", id, ids[0])
		}
	}
	if _, err := s.Issue(req, nil); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated shard accepted an issue: %v", err)
	}
	// Another sensor's shard is unaffected by the saturation.
	other := Request{Target: wire.MustStreamID(43, 0), Op: wire.OpPing}
	if _, err := s.Issue(other, nil); err != nil {
		t.Fatalf("unrelated shard rejected an issue: %v", err)
	}

	// Free three ids in the middle; the allocator must wrap the sub-space
	// and hand back exactly those, never a still-outstanding id.
	freed := map[uint16]bool{ids[10]: true, ids[100]: true, ids[200]: true}
	for id := range freed {
		s.HandleAck(id, clock.Now())
	}
	for i := 0; i < 3; i++ {
		id, err := s.Issue(req, nil)
		if err != nil {
			t.Fatalf("post-ack issue %d: %v", i, err)
		}
		if !freed[id] {
			t.Fatalf("allocator handed out id %#04x, want one of the freed ids", id)
		}
		delete(freed, id)
	}
	if _, err := s.Issue(req, nil); !errors.Is(err, ErrSaturated) {
		t.Fatal("shard should be saturated again after reusing the freed ids")
	}
}

// An ack routes back to its home shard from the id's top bits alone —
// requests against sensors in different shards complete independently.
func TestAckRoutesAcrossShards(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := NewService(clock, func(wire.ControlMessage) {}, Options{Shards: 16})

	var ids []uint16
	for sensor := wire.SensorID(1); sensor <= 40; sensor++ {
		id, err := s.Issue(Request{Target: wire.MustStreamID(sensor, 0), Op: wire.OpPing}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if got := s.Outstanding(); got != 40 {
		t.Fatalf("outstanding = %d, want 40", got)
	}
	for _, id := range ids {
		s.HandleAck(id, clock.Now())
	}
	st := s.Stats()
	if st.Acked != 40 || st.Outstanding != 0 || st.DuplicateAcks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// A burst of conflicting updates against one sensor setting collapses to
// the first transmission plus one trailing transmission of the latest
// value; the intermediate requests complete as superseded.
func TestCoalescingCollapsesBurst(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var sent []wire.ControlMessage
	s := NewService(clock, func(c wire.ControlMessage) { sent = append(sent, c) }, Options{
		RetryInterval:  time.Hour,
		MaxAttempts:    1,
		CoalesceWindow: 100 * time.Millisecond,
	})
	target := wire.MustStreamID(7, 0)

	var results []Result
	record := func(r Result) { results = append(results, r) }
	for v := uint32(1); v <= 5; v++ {
		if _, err := s.Issue(Request{Target: target, Op: wire.OpSetRate, Value: v}, record); err != nil {
			t.Fatal(err)
		}
	}
	if len(sent) != 1 || sent[0].Value != 1 {
		t.Fatalf("burst head: sent %+v, want one transmission of value 1", sent)
	}
	// Values 2..4 were superseded inside the window, in order.
	if len(results) != 3 {
		t.Fatalf("superseded results = %d, want 3", len(results))
	}
	for i, r := range results {
		if r.Outcome != OutcomeSuperseded || r.Request.Value != uint32(i+2) {
			t.Fatalf("result %d = %+v", i, r)
		}
	}

	clock.Advance(100 * time.Millisecond) // window closes, latest value issues
	if len(sent) != 2 || sent[1].Value != 5 {
		t.Fatalf("trailing actuation: sent %d messages, last %+v", len(sent), sent[len(sent)-1])
	}
	if st := s.Stats(); st.Issued != 2 || st.Coalesced != 4 {
		t.Fatalf("stats = %+v", st)
	}

	// The re-armed window drains empty and closes; the next request
	// transmits immediately again.
	clock.Advance(100 * time.Millisecond)
	if _, err := s.Issue(Request{Target: target, Op: wire.OpSetRate, Value: 9}, nil); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 3 || sent[2].Value != 9 {
		t.Fatalf("post-window issue: sent %+v", sent)
	}
}

// Pings probe reachability and must never coalesce.
func TestPingsNeverCoalesce(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	count := 0
	s := NewService(clock, func(wire.ControlMessage) { count++ }, Options{
		RetryInterval: time.Hour, MaxAttempts: 1, CoalesceWindow: time.Second,
	})
	for i := 0; i < 3; i++ {
		if _, err := s.Issue(pingReq, nil); err != nil {
			t.Fatal(err)
		}
	}
	if count != 3 {
		t.Fatalf("pings sent = %d, want 3", count)
	}
}

// Stop must resolve requests held inside a coalescing window.
func TestStopCancelsHeldRequest(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := NewService(clock, func(wire.ControlMessage) {}, Options{
		RetryInterval: time.Hour, MaxAttempts: 1, CoalesceWindow: time.Second,
	})
	target := wire.MustStreamID(7, 0)
	if _, err := s.Issue(Request{Target: target, Op: wire.OpSetRate, Value: 1}, nil); err != nil {
		t.Fatal(err)
	}
	var held Result
	if _, err := s.Issue(Request{Target: target, Op: wire.OpSetRate, Value: 2}, func(r Result) { held = r }); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if held.Outcome != OutcomeCancelled {
		t.Fatalf("held result = %+v", held)
	}
	clock.Advance(time.Hour) // the armed window close fires into the stopped shard
	if st := s.Stats(); st.Issued != 1 || st.Cancelled != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestActuationRaceStress drives concurrent issues, acks and stats reads
// against a concurrently-advanced virtual clock, so retry and expiry
// timers interleave with the control path. Run with -race. Every issued
// request must resolve exactly once.
func TestActuationRaceStress(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var svc *Service
	acks := make(chan uint16, 4096)
	svc = NewService(clock, func(wire.ControlMessage) {}, Options{
		Shards:        8,
		RetryInterval: 5 * time.Millisecond,
		MaxAttempts:   3,
	})

	const issuers, perIssuer = 4, 400
	var resolved atomic.Int64
	var produceWG, ackerWG sync.WaitGroup
	for w := 0; w < issuers; w++ {
		produceWG.Add(1)
		go func(seed int64) {
			defer produceWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perIssuer; i++ {
				target := wire.MustStreamID(wire.SensorID(rng.Intn(64)+1), 0)
				id, err := svc.Issue(Request{Target: target, Op: wire.OpPing}, func(Result) {
					resolved.Add(1)
				})
				if err != nil {
					t.Errorf("issue: %v", err)
					return
				}
				if rng.Intn(2) == 0 {
					acks <- id
				}
			}
		}(int64(w + 1))
	}
	ackerWG.Add(1)
	go func() { // acker: completes roughly half the requests
		defer ackerWG.Done()
		for id := range acks {
			svc.HandleAck(id, clock.Now())
		}
	}()
	produceWG.Add(1)
	go func() { // clock driver: fires retries and expiries concurrently
		defer produceWG.Done()
		for i := 0; i < 300; i++ {
			clock.Advance(time.Millisecond)
			_ = svc.Stats()
			_ = svc.Outstanding()
		}
	}()

	produceWG.Wait()
	close(acks)
	ackerWG.Wait()

	// Drain: let every remaining retry budget run out, then stop.
	clock.Advance(time.Second)
	svc.Stop()

	st := svc.Stats()
	if st.Issued != int64(issuers*perIssuer) {
		t.Fatalf("issued = %d, want %d", st.Issued, issuers*perIssuer)
	}
	if got := st.Acked + st.Expired + st.Cancelled; got != st.Issued {
		t.Fatalf("acked %d + expired %d + cancelled %d != issued %d",
			st.Acked, st.Expired, st.Cancelled, st.Issued)
	}
	if resolved.Load() != st.Issued {
		t.Fatalf("done callbacks = %d, want %d", resolved.Load(), st.Issued)
	}
}

// Wire id 0 is reserved for never-transmitted results: the allocator
// must skip it across a full wrap of the whole 16-bit space (shards=1,
// where the sub-space contains id 0).
func TestIDZeroNeverAllocated(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := NewService(clock, func(wire.ControlMessage) {}, Options{Shards: 1, RetryInterval: time.Hour})
	for i := 0; i < 1<<16+50; i++ {
		id, err := s.Issue(pingReq, nil)
		if err != nil {
			t.Fatalf("issue %d: %v", i, err)
		}
		if id == 0 {
			t.Fatalf("issue %d allocated reserved wire id 0", i)
		}
		s.HandleAck(id, clock.Now())
	}
}

// A saturated issue must not leave its freshly-opened coalescing window
// behind: followers would be absorbed into it and silently dropped
// instead of seeing ErrSaturated themselves.
func TestSaturatedIssueClosesWindow(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	opts := shardOptions()
	opts.CoalesceWindow = 100 * time.Millisecond
	s := NewService(clock, func(wire.ControlMessage) {}, opts)
	target := wire.MustStreamID(42, 0)

	// Saturate the target's shard with non-coalescible pings.
	var ids []uint16
	for {
		id, err := s.Issue(Request{Target: target, Op: wire.OpPing}, nil)
		if err != nil {
			break
		}
		ids = append(ids, id)
	}
	rate := Request{Target: target, Op: wire.OpSetRate, Value: 1000}
	if _, err := s.Issue(rate, nil); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated coalescible issue: %v", err)
	}
	// The follower must see the error too, not a silent (0, nil) absorb.
	if _, err := s.Issue(rate, nil); !errors.Is(err, ErrSaturated) {
		t.Fatalf("follower swallowed by a leaked window: %v", err)
	}
	// After capacity frees up, issuing works again.
	s.HandleAck(ids[0], clock.Now())
	if _, err := s.Issue(rate, nil); err != nil {
		t.Fatalf("post-ack issue: %v", err)
	}
	if st := s.Stats(); st.Coalesced != 0 {
		t.Fatalf("requests were absorbed during saturation: %+v", st)
	}
}

// Latest-wins under loss: when the trailing actuation of a coalescing
// window transmits a newer value while the window's first transmission
// is still unacked, the older request's retries are abandoned — the
// superseded value can never be retransmitted after the newer one.
func TestTrailingActuationSupersedesUnackedPrior(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var sent []wire.ControlMessage
	s := NewService(clock, func(c wire.ControlMessage) { sent = append(sent, c) }, Options{
		RetryInterval:  2 * time.Second,
		MaxAttempts:    5,
		CoalesceWindow: 100 * time.Millisecond,
	})
	target := wire.MustStreamID(7, 0)

	var first Result
	firstID, err := s.Issue(Request{Target: target, Op: wire.OpSetRate, Value: 1000}, func(r Result) { first = r })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Issue(Request{Target: target, Op: wire.OpSetRate, Value: 2000}, nil); err != nil {
		t.Fatal(err)
	}
	clock.Advance(100 * time.Millisecond) // window closes: value 2000 transmits
	if first.Outcome != OutcomeSuperseded || first.UpdateID != firstID || first.Attempts != 1 {
		t.Fatalf("first result = %+v, want superseded id %d", first, firstID)
	}
	// The abandoned request's retry must not fire; the newer one retries.
	clock.Advance(10 * time.Second)
	for _, c := range sent[2:] {
		if c.Value != 2000 {
			t.Fatalf("superseded value retransmitted after the trailing actuation: %v", sentValues(sent))
		}
	}
	st := s.Stats()
	if st.Superseded != 1 || st.Issued != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Acked+st.Expired+st.Cancelled+st.Superseded != st.Issued {
		t.Fatalf("issued requests did not all resolve: %+v", st)
	}
}

func sentValues(sent []wire.ControlMessage) []uint32 {
	vs := make([]uint32, len(sent))
	for i, c := range sent {
		vs[i] = c.Value
	}
	return vs
}

// Every transmission of a request — first attempt and retries — must
// carry the request's original issue timestamp: the sensor applies
// settings in issue order, so a retry re-stamped with the transmit time
// could masquerade as newer than a later request and revert the sensor.
func TestRetryCarriesOriginalIssueTimestamp(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var sent []wire.ControlMessage
	s := NewService(clock, func(c wire.ControlMessage) { sent = append(sent, c) }, Options{
		RetryInterval: time.Second, MaxAttempts: 3,
	})
	issued := clock.Now()
	if _, err := s.Issue(Request{Target: wire.MustStreamID(7, 0), Op: wire.OpSetRate, Value: 1000}, nil); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second) // two retries fire
	if len(sent) != 3 {
		t.Fatalf("sent %d transmissions, want 3", len(sent))
	}
	for i, c := range sent {
		if !c.Issued.Equal(issued) {
			t.Fatalf("attempt %d Issued = %v, want original %v", i+1, c.Issued, issued)
		}
	}
}

// A saturated sub-space must not leave a coalescing window (or its armed
// close timer) behind: the orphan timer would later close a different
// window for the same key early, breaking the one-actuation-per-window
// contract.
func TestSaturationLeavesNoCoalescingWindow(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	sent := 0
	opts := shardOptions()
	opts.CoalesceWindow = 100 * time.Millisecond
	s := NewService(clock, func(wire.ControlMessage) { sent++ }, opts)

	// Two sensors homed in the same shard give distinct coalescing keys
	// against one id sub-space.
	sensorA := wire.SensorID(42)
	sensorB := wire.SensorID(0)
	for id := wire.SensorID(1); ; id++ {
		if id != sensorA && id.Shard(opts.Shards) == sensorA.Shard(opts.Shards) {
			sensorB = id
			break
		}
	}

	// Saturate the shard: distinct stream indices are distinct coalescing
	// keys, so every issue allocates an id and stays outstanding.
	var ids []uint16
	fill := func(sensor wire.SensorID) error {
		for i := 0; i <= 255; i++ {
			id, err := s.Issue(Request{Target: wire.MustStreamID(sensor, wire.StreamIndex(i)), Op: wire.OpSetRate, Value: 1}, nil)
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
		return nil
	}
	if err := fill(sensorA); err != nil {
		t.Fatalf("saturated too early: %v", err)
	}
	// probe is the key whose Issue hits ErrSaturated — the key a buggy
	// implementation would leave an orphan close timer armed for.
	var probe wire.StreamID
	sawSaturated := false
	for i := 0; i < 100; i++ {
		target := wire.MustStreamID(sensorB, wire.StreamIndex(i))
		if _, err := s.Issue(Request{Target: target, Op: wire.OpSetRate, Value: 1}, nil); err != nil {
			if !errors.Is(err, ErrSaturated) {
				t.Fatal(err)
			}
			probe = target
			sawSaturated = true
			break
		}
	}
	if !sawSaturated {
		t.Fatal("never saturated the shard")
	}

	// Free two ids, then open a real window on a fresh key mid-way
	// between the saturation instant and the (buggy) orphan timer's fire
	// time: first transmission immediate, a follower held.
	clock.Advance(50 * time.Millisecond)
	s.HandleAck(ids[0], clock.Now())
	s.HandleAck(ids[1], clock.Now())
	if _, err := s.Issue(Request{Target: probe, Op: wire.OpSetRate, Value: 10}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Issue(Request{Target: probe, Op: wire.OpSetRate, Value: 20}, nil); err != nil {
		t.Fatal(err)
	}
	before := sent

	// At +100ms an orphan timer from the saturated issue would fire and
	// close the probe's window 50ms early, transmitting the held value.
	clock.Advance(50 * time.Millisecond)
	if sent != before {
		t.Fatalf("held request transmitted %d early transmissions after 50ms — orphan close timer fired", sent-before)
	}
	// The probe's own window closes at +150ms and issues the trailing value.
	clock.Advance(50 * time.Millisecond)
	if sent != before+1 {
		t.Fatalf("trailing transmissions = %d, want 1", sent-before)
	}
}

// Two distinct requests issued within one clock instant must carry
// distinct, ordered wire timestamps: the sensor applies settings in
// issue order, and a tie would let a delayed retry of the older value
// slip past the staleness guard and revert the newer setting.
func TestSameInstantFlipsCarryOrderedStamps(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var sent []wire.ControlMessage
	s := NewService(clock, func(c wire.ControlMessage) { sent = append(sent, c) }, Options{
		RetryInterval: time.Hour, MaxAttempts: 1,
	})
	target := wire.MustStreamID(7, 0)
	for v := uint32(1); v <= 3; v++ {
		if _, err := s.Issue(Request{Target: target, Op: wire.OpSetRate, Value: v}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(sent) != 3 {
		t.Fatalf("sent = %d, want 3", len(sent))
	}
	for i := 1; i < len(sent); i++ {
		if !sent[i].Issued.After(sent[i-1].Issued) {
			t.Fatalf("stamp %d (%v) not after stamp %d (%v)",
				i, sent[i].Issued, i-1, sent[i-1].Issued)
		}
	}
	// The trailing coalesced actuation is ordered too (it goes through
	// the same per-shard stamp).
	if !sent[0].Issued.After(epoch.Add(-time.Second)) {
		t.Fatal("sanity: stamps near epoch")
	}
}

// stopSpyClock hides the virtual clock's Scheduler so the service takes
// the real-clock AfterFunc path, and counts timer Stops.
type stopSpyClock struct {
	v     *sim.VirtualClock
	stops atomic.Int32
}

func (c *stopSpyClock) Now() time.Time { return c.v.Now() }
func (c *stopSpyClock) AfterFunc(d time.Duration, f func()) sim.Timer {
	return spyTimer{c.v.AfterFunc(d, f), &c.stops}
}

type spyTimer struct {
	sim.Timer
	stops *atomic.Int32
}

func (t spyTimer) Stop() bool {
	t.stops.Add(1)
	return t.Timer.Stop()
}

// On clocks without the pooled scheduler (production real clocks), an
// ack must stop the request's armed retry timer immediately — otherwise
// every acked request retains its pending record, done callback and
// timer until the dead timer fires up to RetryInterval later.
func TestAckReleasesRetryTimerOnRealClockPath(t *testing.T) {
	clock := &stopSpyClock{v: sim.NewVirtualClock(epoch)}
	s := NewService(clock, func(wire.ControlMessage) {}, Options{
		RetryInterval: time.Hour, MaxAttempts: 5,
	})
	if s.sched != nil {
		t.Fatal("spy clock must not take the pooled scheduler path")
	}
	id, err := s.Issue(Request{Target: wire.MustStreamID(7, 0), Op: wire.OpSetRate, Value: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := clock.stops.Load(); got != 0 {
		t.Fatalf("stops before ack = %d", got)
	}
	s.HandleAck(id, clock.Now())
	if got := clock.stops.Load(); got != 1 {
		t.Fatalf("stops after ack = %d, want 1 (retry timer released)", got)
	}
	// Stop releases the timers of requests still outstanding.
	id2, err := s.Issue(Request{Target: wire.MustStreamID(7, 1), Op: wire.OpSetRate, Value: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = id2
	s.Stop()
	if got := clock.stops.Load(); got != 2 {
		t.Fatalf("stops after Stop = %d, want 2", got)
	}
}

// Stamps must stay strictly ordered after the wire's µs truncation: two
// requests issued within one microsecond (a real clock has ns
// precision) would otherwise carry ordered in-memory stamps that encode
// to the identical wire value, resurrecting the tie.
func TestStampsSurviveWireTruncation(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var sent []wire.ControlMessage
	s := NewService(clock, func(c wire.ControlMessage) { sent = append(sent, c) }, Options{
		RetryInterval: time.Hour, MaxAttempts: 1,
	})
	target := wire.MustStreamID(7, 0)
	for v := uint32(1); v <= 3; v++ {
		if _, err := s.Issue(Request{Target: target, Op: wire.OpSetRate, Value: v}, nil); err != nil {
			t.Fatal(err)
		}
		clock.Advance(300 * time.Nanosecond) // sub-µs spacing
	}
	if len(sent) != 3 {
		t.Fatalf("sent = %d, want 3", len(sent))
	}
	for i, c := range sent {
		enc, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := wire.DecodeControl(enc)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			prev := sent[i-1]
			prevEnc, _ := prev.Encode()
			prevDec, _ := wire.DecodeControl(prevEnc)
			if !dec.Issued.After(prevDec.Issued) {
				t.Fatalf("decoded stamp %d (%v) not after %d (%v)", i, dec.Issued, i-1, prevDec.Issued)
			}
		}
	}
}

// Package actuation implements the Actuation Service of §4.2: after the
// Resource Manager approves a stream-update request, this service
// “processes the request with timestamps, and checksums, before forwarding
// to the message replicator”.
//
// Because the downlink is as unreliable as the uplink, the service also
// tracks every outstanding request and retries it until the target
// sensor's acknowledgement (the update id piggy-backed on a data message,
// wire.FlagUpdateAck) is observed or the retry budget is exhausted. The
// request-to-acknowledgement latency distribution it records is the metric
// the Super Coordinator's predictive policies exist to improve.
package actuation

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Request is an approved stream-update request entering the service.
type Request struct {
	Target   wire.StreamID
	Op       wire.Op
	Param    uint8
	Value    uint32
	Consumer string // originating consumer, for diagnostics
}

// Outcome reports how an issued request ended.
type Outcome int

const (
	// OutcomeAcked means the sensor acknowledged the request.
	OutcomeAcked Outcome = iota + 1
	// OutcomeExpired means the retry budget ran out without an ack —
	// expected for simple transmit-only sensors and roaming sensors.
	OutcomeExpired
	// OutcomeCancelled means the service was stopped first.
	OutcomeCancelled
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeAcked:
		return "acked"
	case OutcomeExpired:
		return "expired"
	case OutcomeCancelled:
		return "cancelled"
	default:
		return "outcome(?)"
	}
}

// Result is delivered to the completion callback of Issue.
type Result struct {
	UpdateID uint16
	Request  Request
	Outcome  Outcome
	Attempts int
	Latency  time.Duration // issue → ack; zero unless acked
}

// Options configures the Service.
type Options struct {
	// RetryInterval separates transmission attempts. Default 2s.
	RetryInterval time.Duration
	// MaxAttempts bounds transmissions per request (first + retries).
	// Default 5.
	MaxAttempts int
}

// Stats is a snapshot of service counters.
type Stats struct {
	Issued        int64
	Acked         int64
	Expired       int64
	Cancelled     int64
	Retries       int64
	DuplicateAcks int64
	Outstanding   int
}

// Service is the Actuation Service.
type Service struct {
	clock sim.Clock
	send  func(wire.ControlMessage)
	opts  Options

	mu          sync.Mutex
	nextID      uint16
	outstanding map[uint16]*pending
	stopped     bool

	issued    metrics.Counter
	acked     metrics.Counter
	expired   metrics.Counter
	cancelled metrics.Counter
	retries   metrics.Counter
	dupAcks   metrics.Counter
	latency   metrics.Histogram
}

type pending struct {
	req      Request
	issuedAt time.Time
	attempts int
	timer    sim.Timer
	done     func(Result)
}

// Service errors.
var (
	ErrStopped   = errors.New("actuation: service stopped")
	ErrSaturated = errors.New("actuation: all 64K update ids outstanding")
)

// NewService creates a Service that forwards encoded-ready control
// messages to send (the Message Replicator). NewService panics on a nil
// send (programming error).
func NewService(clock sim.Clock, send func(wire.ControlMessage), opts Options) *Service {
	if send == nil {
		panic("actuation: nil send")
	}
	if opts.RetryInterval <= 0 {
		opts.RetryInterval = 2 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	return &Service{
		clock:       clock,
		send:        send,
		opts:        opts,
		outstanding: make(map[uint16]*pending),
	}
}

// Issue stamps, tracks and transmits one approved request. done (optional)
// is invoked exactly once with the final outcome.
func (s *Service) Issue(req Request, done func(Result)) (uint16, error) {
	if !req.Op.Valid() {
		return 0, fmt.Errorf("actuation: %w", wire.ErrBadOp)
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return 0, ErrStopped
	}
	id, ok := s.allocateIDLocked()
	if !ok {
		s.mu.Unlock()
		return 0, ErrSaturated
	}
	p := &pending{req: req, issuedAt: s.clock.Now(), done: done}
	s.outstanding[id] = p
	s.issued.Inc()
	s.transmitLocked(id, p)
	s.mu.Unlock()
	return id, nil
}

func (s *Service) allocateIDLocked() (uint16, bool) {
	for i := 0; i < 1<<16; i++ {
		s.nextID++
		if _, inUse := s.outstanding[s.nextID]; !inUse {
			return s.nextID, true
		}
	}
	return 0, false
}

// transmitLocked sends one attempt and arms the retry timer.
func (s *Service) transmitLocked(id uint16, p *pending) {
	p.attempts++
	if p.attempts > 1 {
		s.retries.Inc()
	}
	msg := wire.ControlMessage{
		UpdateID: id,
		Target:   p.req.Target,
		Op:       p.req.Op,
		Param:    p.req.Param,
		Value:    p.req.Value,
		Issued:   s.clock.Now(), // the §4.2 timestamp
	}
	// Send outside the lock: the replicator fans out to transmitters and
	// the medium, none of which re-enter this service.
	send := s.send
	s.mu.Unlock()
	send(msg)
	s.mu.Lock()
	if _, still := s.outstanding[id]; !still {
		return // acked while transmitting
	}
	if p.attempts >= s.opts.MaxAttempts {
		p.timer = s.clock.AfterFunc(s.opts.RetryInterval, func() { s.expire(id) })
		return
	}
	p.timer = s.clock.AfterFunc(s.opts.RetryInterval, func() { s.retry(id) })
}

func (s *Service) retry(id uint16) {
	s.mu.Lock()
	p, ok := s.outstanding[id]
	if !ok || s.stopped {
		s.mu.Unlock()
		return
	}
	s.transmitLocked(id, p)
	s.mu.Unlock()
}

func (s *Service) expire(id uint16) {
	s.mu.Lock()
	p, ok := s.outstanding[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.outstanding, id)
	s.expired.Inc()
	s.mu.Unlock()
	if p.done != nil {
		p.done(Result{UpdateID: id, Request: p.req, Outcome: OutcomeExpired, Attempts: p.attempts})
	}
}

// HandleAck completes the outstanding request acknowledged by a data
// message carrying update id ackID. The deployment core calls this for
// every delivery with wire.FlagUpdateAck set. Unknown or repeated ids are
// counted and ignored (acks ride an at-least-once channel).
func (s *Service) HandleAck(ackID uint16, at time.Time) {
	s.mu.Lock()
	p, ok := s.outstanding[ackID]
	if !ok {
		s.dupAcks.Inc()
		s.mu.Unlock()
		return
	}
	delete(s.outstanding, ackID)
	if p.timer != nil {
		p.timer.Stop()
	}
	latency := at.Sub(p.issuedAt)
	s.acked.Inc()
	s.latency.ObserveDuration(latency)
	s.mu.Unlock()
	if p.done != nil {
		p.done(Result{
			UpdateID: ackID,
			Request:  p.req,
			Outcome:  OutcomeAcked,
			Attempts: p.attempts,
			Latency:  latency,
		})
	}
}

// Outstanding returns the number of unacknowledged requests.
func (s *Service) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.outstanding)
}

// Stop cancels all outstanding requests (OutcomeCancelled) and rejects
// further Issues.
func (s *Service) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	pendings := make(map[uint16]*pending, len(s.outstanding))
	for id, p := range s.outstanding {
		pendings[id] = p
		if p.timer != nil {
			p.timer.Stop()
		}
	}
	s.outstanding = make(map[uint16]*pending)
	s.cancelled.Add(int64(len(pendings)))
	s.mu.Unlock()
	for id, p := range pendings {
		if p.done != nil {
			p.done(Result{UpdateID: id, Request: p.req, Outcome: OutcomeCancelled, Attempts: p.attempts})
		}
	}
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	outstanding := len(s.outstanding)
	s.mu.Unlock()
	return Stats{
		Issued:        s.issued.Value(),
		Acked:         s.acked.Value(),
		Expired:       s.expired.Value(),
		Cancelled:     s.cancelled.Value(),
		Retries:       s.retries.Value(),
		DuplicateAcks: s.dupAcks.Value(),
		Outstanding:   outstanding,
	}
}

// Latency exposes the request→ack latency distribution (milliseconds).
func (s *Service) Latency() *metrics.Histogram { return &s.latency }

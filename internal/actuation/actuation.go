// Package actuation implements the Actuation Service of §4.2: after the
// Resource Manager approves a stream-update request, this service
// “processes the request with timestamps, and checksums, before forwarding
// to the message replicator”.
//
// Because the downlink is as unreliable as the uplink, the service also
// tracks every outstanding request and retries it until the target
// sensor's acknowledgement (the update id piggy-backed on a data message,
// wire.FlagUpdateAck) is observed or the retry budget is exhausted. The
// request-to-acknowledgement latency distribution it records is the metric
// the Super Coordinator's predictive policies exist to improve.
//
// # Sharding
//
// The outstanding table is partitioned into N shards (Options.Shards)
// keyed by the target's sensor — the same wire.SensorID.Shard function the
// rest of the pipeline partitions on — and the 16-bit wire update-id space
// is carved into per-shard sub-spaces (top bits = shard), so issue, ack
// and retry for one sensor's requests take exactly one shard lock and an
// ack routes home from the id alone. Retry timers are fire-and-forget
// (the pooled sim.Scheduler path when the clock offers it) and re-lock
// only their own shard; stale fires are screened by pointer+attempt
// generation checks instead of cancellation handles.
//
// An optional coalescing window (Options.CoalesceWindow) absorbs bursts
// of requests against the same sensor setting: the first request of a
// burst transmits immediately, later ones replace each other inside the
// window (completing their predecessors with OutcomeSuperseded), and only
// the latest is issued when the window closes — a storm of conflicting
// demand flips costs one trailing actuation instead of a retry storm.
package actuation

import (
	"errors"
	"fmt"
	"math/bits"
	"time"

	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Request is an approved stream-update request entering the service.
type Request struct {
	Target   wire.StreamID
	Op       wire.Op
	Param    uint8
	Value    uint32
	Consumer string // originating consumer, for diagnostics
}

// Outcome reports how an issued request ended.
type Outcome int

const (
	// OutcomeAcked means the sensor acknowledged the request.
	OutcomeAcked Outcome = iota + 1
	// OutcomeExpired means the retry budget ran out without an ack —
	// expected for simple transmit-only sensors and roaming sensors.
	OutcomeExpired
	// OutcomeCancelled means the service was stopped first.
	OutcomeCancelled
	// OutcomeSuperseded means a later request against the same sensor
	// setting replaced this one inside a coalescing window — either
	// before it was ever transmitted (Result.UpdateID is 0), or while it
	// was still awaiting an ack when the newer value was transmitted (its
	// remaining retries are abandoned so the stale value can never be
	// retransmitted after the newer one).
	OutcomeSuperseded
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeAcked:
		return "acked"
	case OutcomeExpired:
		return "expired"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeSuperseded:
		return "superseded"
	default:
		return "outcome(?)"
	}
}

// Result is delivered to the completion callback of Issue. UpdateID is 0
// for requests that were never transmitted (superseded inside a
// coalescing window, or cancelled while held in one).
type Result struct {
	UpdateID uint16
	Request  Request
	Outcome  Outcome
	Attempts int
	Latency  time.Duration // issue → ack; zero unless acked
}

// DefaultShards partitions the outstanding table unless Options.Shards
// says otherwise; it matches the resource manager's default so a demand
// meets the same partition at both control-plane layers.
const DefaultShards = 16

// MaxShards bounds the shard count: with 256 shards each sub-space still
// holds 256 update ids.
const MaxShards = 256

// Options configures the Service.
type Options struct {
	// RetryInterval separates transmission attempts. Default 2s.
	RetryInterval time.Duration
	// MaxAttempts bounds transmissions per request (first + retries).
	// Default 5.
	MaxAttempts int
	// Shards partitions the outstanding table by target sensor and carves
	// the 16-bit update-id space into per-shard sub-spaces. <= 0 selects
	// DefaultShards; the value is rounded up to a power of two and capped
	// at MaxShards. 1 restores the historical single table with the full
	// 64K id space.
	//
	// Trade-off: each sub-space holds 65536/Shards ids, and acks ride an
	// at-least-once channel — an id freed by an ack can be reallocated to
	// a new request while a duplicate ack for its previous owner is still
	// in flight, which would falsely complete the new request. The
	// allocator cycles the whole sub-space before reusing an id, so keep
	// Shards small enough that a shard cannot burn through its sub-space
	// within one downlink round-trip (at the 256-shard cap that is 256
	// issue+ack cycles per sensor-shard per RTT).
	Shards int
	// CoalesceWindow, when positive, absorbs bursts of requests against
	// the same sensor setting: within the window only the latest request
	// is issued, earlier ones complete with OutcomeSuperseded. Pings
	// never coalesce. 0 disables coalescing.
	CoalesceWindow time.Duration
}

// Stats is a snapshot of service counters, summed across shards. Every
// issued request resolves into exactly one of Acked, Expired, Cancelled
// or Superseded; Cancelled additionally counts coalescing-held requests
// cancelled before they were ever transmitted (their Result carries
// update id 0 and they were never Issued), so with coalescing enabled
// Acked+Expired+Cancelled+Superseded may exceed Issued by that number.
type Stats struct {
	Issued        int64
	Acked         int64
	Expired       int64
	Cancelled     int64
	Superseded    int64 // transmitted requests retired by a newer coalesced value
	Retries       int64
	DuplicateAcks int64
	Coalesced     int64 // requests absorbed into a coalescing window
	Outstanding   int
	Shards        int
}

// Service is the Actuation Service.
type Service struct {
	clock sim.Clock
	sched sim.Scheduler // non-nil when clock supports pooled fire-and-forget timers
	send  func(wire.ControlMessage)
	opts  Options

	idBits uint // width of each shard's id sub-space
	shards []*ashard
}

// Service errors.
var (
	ErrStopped   = errors.New("actuation: service stopped")
	ErrSaturated = errors.New("actuation: all update ids of the target's shard outstanding")
)

// NewService creates a Service that forwards encoded-ready control
// messages to send (the Message Replicator). NewService panics on a nil
// send (programming error).
func NewService(clock sim.Clock, send func(wire.ControlMessage), opts Options) *Service {
	if send == nil {
		panic("actuation: nil send")
	}
	if opts.RetryInterval <= 0 {
		opts.RetryInterval = 2 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	opts.Shards = ceilPow2(opts.Shards)
	if opts.Shards > MaxShards {
		opts.Shards = MaxShards
	}
	s := &Service{
		clock:  clock,
		send:   send,
		opts:   opts,
		idBits: uint(16 - (bits.Len(uint(opts.Shards)) - 1)),
		shards: make([]*ashard, opts.Shards),
	}
	// Pooled fire-and-forget timers only pay off on the virtual clock,
	// whose scheduler recycles heap events. On real clocks (whose
	// ScheduleFunc is a bare time.AfterFunc) the service keeps the
	// AfterFunc cancellation handle instead, so an ack stops its retry
	// timer immediately rather than retaining the pending record — and
	// the consumer callback graph it captures — until the dead timer
	// fires up to RetryInterval later.
	if _, virtual := clock.(*sim.VirtualClock); virtual {
		s.sched, _ = clock.(sim.Scheduler)
	}
	// One contiguous padded backing array: a multiple-of-64 allocation is
	// 64-aligned by the Go size classes, so every shard starts on a cache
	// line boundary.
	backing := make([]paddedAShard, opts.Shards)
	for i := range s.shards {
		sh := &backing[i].ashard
		sh.base = uint16(i) << s.idBits
		sh.mask = uint16(1<<s.idBits - 1)
		sh.outstanding = make(map[uint16]*pending)
		sh.coal = make(map[coalKey]*coalEntry)
		s.shards[i] = sh
	}
	return s
}

// schedule arms a timer: fire-and-forget on the pooled virtual-clock
// Scheduler path (returns nil), a plain AfterFunc with its cancellation
// handle otherwise. Callbacks must tolerate stale fires either way (the
// service screens them with generation checks); the handle only exists
// so completed requests can release their timers early.
func (s *Service) schedule(d time.Duration, f func()) sim.Timer {
	if s.sched != nil {
		s.sched.ScheduleFunc(d, f)
		return nil
	}
	return s.clock.AfterFunc(d, f)
}

// Issue stamps, tracks and transmits one approved request. done (optional)
// is invoked exactly once with the final outcome. When coalescing is
// enabled and a window is already open for the request's sensor setting,
// the request is held instead of transmitted (Issue returns id 0); it is
// issued when the window closes unless a yet-newer request supersedes it.
func (s *Service) Issue(req Request, done func(Result)) (uint16, error) {
	if !req.Op.Valid() {
		return 0, fmt.Errorf("actuation: %w", wire.ErrBadOp)
	}
	now := s.clock.Now()
	sh := s.shardFor(req.Target)
	sh.mu.Lock()
	if sh.stopped {
		sh.mu.Unlock()
		return 0, ErrStopped
	}
	coalesce := false
	var windowKey coalKey
	if s.opts.CoalesceWindow > 0 {
		if key, ok := coalesceKeyOf(req); ok {
			if ce := sh.coal[key]; ce != nil {
				// Window open: absorb, superseding any earlier held request.
				superseded := ce.held
				ce.held = &heldRequest{req: req, done: done}
				sh.coalesced++
				sh.mu.Unlock()
				completeHeld(superseded, OutcomeSuperseded)
				return 0, nil
			}
			coalesce, windowKey = true, key
		}
	}
	// Allocate before opening a window: a saturated sub-space must not
	// leave a window (and its armed close timer) behind, or the orphan
	// timer would later cut short a different window for the same key.
	id, ok := sh.allocateLocked()
	if !ok {
		sh.mu.Unlock()
		return 0, ErrSaturated
	}
	var window *coalEntry
	if coalesce {
		// First of a potential burst: transmit immediately and open a
		// window that absorbs followers.
		window = &coalEntry{}
		sh.coal[windowKey] = window
		s.schedule(s.opts.CoalesceWindow, func() { s.closeWindow(sh, windowKey) })
	}
	p := &pending{req: req, issuedAt: now, stamp: sh.stampLocked(now), done: done}
	sh.outstanding[id] = p
	sh.issued++
	if window != nil {
		window.lastID, window.lastP = id, p
	}
	s.transmitLocked(sh, id, p)
	sh.mu.Unlock()
	return id, nil
}

// closeWindow ends one coalescing round: if a held request accumulated,
// it is issued now and the window re-arms (continued churn keeps
// collapsing to one actuation per window); otherwise the window closes.
func (s *Service) closeWindow(sh *ashard, key coalKey) {
	sh.mu.Lock()
	ce := sh.coal[key]
	if ce == nil {
		sh.mu.Unlock()
		return
	}
	if sh.stopped || ce.held == nil {
		delete(sh.coal, key)
		held := ce.held
		if held != nil {
			sh.cancelled++
		}
		sh.mu.Unlock()
		completeHeld(held, OutcomeCancelled)
		return
	}
	h := ce.held
	ce.held = nil
	s.schedule(s.opts.CoalesceWindow, func() { s.closeWindow(sh, key) })
	id, ok := sh.allocateLocked()
	if !ok {
		// Sub-space exhausted: the held request cannot be transmitted.
		sh.cancelled++
		sh.mu.Unlock()
		completeHeld(h, OutcomeCancelled)
		return
	}
	// The trailing actuation replaces the key's previous transmission: if
	// that one is still unacked, retire it now so a pending retry cannot
	// retransmit the superseded value after the newer one. (A retry whose
	// send is already in flight can still reach the air after the newer
	// value — radio jitter can reorder any two transmissions anyway — but
	// it carries the older issue timestamp, so the sensor ignores it.)
	var priorResult Result
	var priorDone func(Result)
	if ce.lastP != nil && sh.outstanding[ce.lastID] == ce.lastP {
		delete(sh.outstanding, ce.lastID)
		sh.superseded++
		if ce.lastP.timer != nil {
			ce.lastP.timer.Stop()
		}
		priorResult = Result{
			UpdateID: ce.lastID,
			Request:  ce.lastP.req,
			Outcome:  OutcomeSuperseded,
			Attempts: ce.lastP.attempts,
		}
		priorDone = ce.lastP.done
	}
	now := s.clock.Now()
	p := &pending{req: h.req, issuedAt: now, stamp: sh.stampLocked(now), done: h.done}
	sh.outstanding[id] = p
	sh.issued++
	ce.lastID, ce.lastP = id, p
	s.transmitLocked(sh, id, p)
	sh.mu.Unlock()
	if priorDone != nil {
		priorDone(priorResult)
	}
}

// transmitLocked sends one attempt and arms the retry (or expiry) timer.
// Caller holds sh.mu; the send itself runs unlocked.
func (s *Service) transmitLocked(sh *ashard, id uint16, p *pending) {
	p.attempts++
	if p.attempts > 1 {
		sh.retries++
	}
	msg := wire.ControlMessage{
		UpdateID: id,
		Target:   p.req.Target,
		Op:       p.req.Op,
		Param:    p.req.Param,
		Value:    p.req.Value,
		// The §4.2 timestamp is the request's issue stamp, stable across
		// retries and strictly ordered within the shard: the sensor
		// applies the highest issue stamp it has seen per setting, so a
		// delayed retransmission of a superseded value (or a radio-jitter
		// reordering) can never revert a newer one.
		Issued: p.stamp,
	}
	// Send outside the lock: the replicator fans out to transmitters and
	// the medium, none of which re-enter this shard while it is locked.
	send := s.send
	sh.mu.Unlock()
	send(msg)
	sh.mu.Lock()
	if sh.outstanding[id] != p {
		return // acked (or cancelled) while transmitting
	}
	// The timer callbacks capture (id, p, gen): a fire is stale — and
	// ignored — unless the very same pending is still outstanding at the
	// same attempt count, so correctness never needs a Stop handle even
	// when an id is reused after an ack. The handle, when schedule
	// returns one (real clocks), only releases completed requests'
	// timers early.
	gen := p.attempts
	if p.attempts >= s.opts.MaxAttempts {
		p.timer = s.schedule(s.opts.RetryInterval, func() { s.expire(sh, id, p, gen) })
		return
	}
	p.timer = s.schedule(s.opts.RetryInterval, func() { s.retry(sh, id, p, gen) })
}

func (s *Service) retry(sh *ashard, id uint16, p *pending, gen int) {
	sh.mu.Lock()
	if sh.stopped || sh.outstanding[id] != p || p.attempts != gen {
		sh.mu.Unlock()
		return
	}
	s.transmitLocked(sh, id, p)
	sh.mu.Unlock()
}

func (s *Service) expire(sh *ashard, id uint16, p *pending, gen int) {
	sh.mu.Lock()
	if sh.outstanding[id] != p || p.attempts != gen {
		sh.mu.Unlock()
		return
	}
	delete(sh.outstanding, id)
	sh.expired++
	sh.mu.Unlock()
	if p.done != nil {
		p.done(Result{UpdateID: id, Request: p.req, Outcome: OutcomeExpired, Attempts: p.attempts})
	}
}

// HandleAck completes the outstanding request acknowledged by a data
// message carrying update id ackID. The deployment core calls this for
// every delivery with wire.FlagUpdateAck set. The shard is recovered from
// the id's top bits, so the ack takes exactly one shard lock. Unknown or
// repeated ids are counted and ignored (acks ride an at-least-once
// channel).
func (s *Service) HandleAck(ackID uint16, at time.Time) {
	sh := s.shardForID(ackID)
	sh.mu.Lock()
	p, ok := sh.outstanding[ackID]
	if !ok {
		sh.dupAcks++
		sh.mu.Unlock()
		return
	}
	delete(sh.outstanding, ackID)
	sh.acked++
	if p.timer != nil {
		p.timer.Stop()
	}
	sh.mu.Unlock()
	latency := at.Sub(p.issuedAt)
	sh.latency.ObserveDuration(latency)
	if p.done != nil {
		p.done(Result{
			UpdateID: ackID,
			Request:  p.req,
			Outcome:  OutcomeAcked,
			Attempts: p.attempts,
			Latency:  latency,
		})
	}
}

// Outstanding returns the number of unacknowledged requests.
func (s *Service) Outstanding() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.outstanding)
		sh.mu.Unlock()
	}
	return n
}

// Stop cancels all outstanding and coalescing-held requests
// (OutcomeCancelled) and rejects further Issues. Idempotent.
func (s *Service) Stop() {
	type doneCall struct {
		r Result
		f func(Result)
	}
	var calls []doneCall
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.stopped {
			sh.mu.Unlock()
			continue
		}
		sh.stopped = true
		for id, p := range sh.outstanding {
			if p.timer != nil {
				p.timer.Stop()
			}
			if p.done != nil {
				calls = append(calls, doneCall{
					r: Result{UpdateID: id, Request: p.req, Outcome: OutcomeCancelled, Attempts: p.attempts},
					f: p.done,
				})
			}
		}
		sh.cancelled += int64(len(sh.outstanding))
		sh.outstanding = make(map[uint16]*pending)
		for key, ce := range sh.coal {
			if ce.held != nil {
				sh.cancelled++
				if ce.held.done != nil {
					calls = append(calls, doneCall{
						r: Result{Request: ce.held.req, Outcome: OutcomeCancelled},
						f: ce.held.done,
					})
				}
			}
			delete(sh.coal, key)
		}
		sh.mu.Unlock()
	}
	for _, c := range calls {
		c.f(c.r)
	}
}

// Stats returns a snapshot of the service counters summed across shards.
func (s *Service) Stats() Stats {
	st := Stats{Shards: len(s.shards)}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Issued += sh.issued
		st.Acked += sh.acked
		st.Expired += sh.expired
		st.Cancelled += sh.cancelled
		st.Superseded += sh.superseded
		st.Retries += sh.retries
		st.DuplicateAcks += sh.dupAcks
		st.Coalesced += sh.coalesced
		st.Outstanding += len(sh.outstanding)
		sh.mu.Unlock()
	}
	return st
}

// Latency returns a merged snapshot of the per-shard request→ack latency
// distributions (milliseconds). Acks record into their shard's histogram
// — no cross-shard serial point on the ack path — and the merge happens
// only here, at read time.
func (s *Service) Latency() *metrics.Histogram {
	h := &metrics.Histogram{}
	for _, sh := range s.shards {
		h.Merge(&sh.latency)
	}
	return h
}

package geo

import (
	"fmt"
	"math"
	"slices"
)

// Grid is a uniform-cell spatial index over coverage circles, shared by
// the simulated radio medium (which listeners can hear a transmission
// from a point?) and the Message Replicator (which transmitters' coverage
// intersects a location-estimate area?). Both are coverage-intersection
// queries, and both must cost O(nearby) rather than O(everything
// attached) for dense fields to scale.
//
// Each entry is a circle bucketed into every cell its bounding box
// overlaps, so a listener with radius R is found by a plain point query
// of the single cell containing the query point. Queries are
// deterministic: a point query yields entries in insertion order within
// the cell; a circle query visits cells in row-major order and returns
// ids deduplicated in ascending order. Queries never mutate the index,
// so any number of concurrent readers is safe as long as no Insert,
// Move or Remove runs concurrently.
//
// Entries whose circle would span more than maxEntryCells cells (a huge
// radius relative to the cell size) are kept on a small overflow list
// scanned by every query instead of being bucketed, bounding index
// memory at a mild query cost — tune the cell size towards the dominant
// radius so the overflow list stays short.
//
// The zero value is not usable; construct with NewGrid.
type Grid struct {
	cell      float64
	inv       float64
	buckets   map[uint64][]*gridEntry
	items     map[int]*gridEntry
	oversized []*gridEntry
}

type gridEntry struct {
	id                     int
	c                      Circle
	minX, minY, maxX, maxY int32
	oversized              bool
}

// maxEntryCells caps how many cells one entry may be bucketed into
// before it is moved to the overflow list (32×32 cells ≈ a radius 16×
// the cell size).
const maxEntryCells = 1024

// NewGrid returns an empty index with the given cell edge length in
// metres. NewGrid panics on a non-positive or non-finite cell size (a
// configuration programming error). Entries perform best when the cell
// size is on the order of the typical coverage radius: each circle then
// occupies a handful of cells and a point query scans one small bucket.
func NewGrid(cellSize float64) *Grid {
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		panic(fmt.Sprintf("geo: grid cell size %v must be positive and finite", cellSize))
	}
	return &Grid{
		cell:    cellSize,
		inv:     1 / cellSize,
		buckets: make(map[uint64][]*gridEntry),
		items:   make(map[int]*gridEntry),
	}
}

// CellSize returns the cell edge length.
func (g *Grid) CellSize() float64 { return g.cell }

// Len returns the number of indexed entries.
func (g *Grid) Len() int { return len(g.items) }

// cellCoord maps a coordinate to its cell index, clamped to the int32
// range. Clamping is monotonic, so entries and query points beyond the
// representable range still land in consistent (merely coarser) cells
// and are screened by the exact circle checks as usual.
func (g *Grid) cellCoord(v float64) int32 {
	f := math.Floor(v * g.inv)
	switch {
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return math.MinInt32
	default:
		return int32(f)
	}
}

func cellKey(x, y int32) uint64 {
	return uint64(uint32(x))<<32 | uint64(uint32(y))
}

func (g *Grid) setRange(e *gridEntry) {
	r := e.c.R
	if r < 0 || math.IsNaN(r) {
		r = 0
	}
	e.minX = g.cellCoord(e.c.Center.X - r)
	e.maxX = g.cellCoord(e.c.Center.X + r)
	e.minY = g.cellCoord(e.c.Center.Y - r)
	e.maxY = g.cellCoord(e.c.Center.Y + r)
	spanX := int64(e.maxX) - int64(e.minX) + 1
	spanY := int64(e.maxY) - int64(e.minY) + 1
	e.oversized = spanX*spanY > maxEntryCells
}

func (g *Grid) link(e *gridEntry) {
	if e.oversized {
		g.oversized = append(g.oversized, e)
		return
	}
	for y := e.minY; ; y++ {
		for x := e.minX; ; x++ {
			k := cellKey(x, y)
			g.buckets[k] = append(g.buckets[k], e)
			if x == e.maxX {
				break
			}
		}
		if y == e.maxY {
			break
		}
	}
}

// unlink removes e from the buckets of the given cell range, or from the
// overflow list when wasOversized is set.
func (g *Grid) unlink(e *gridEntry, minX, maxX, minY, maxY int32, wasOversized bool) {
	if wasOversized {
		if i := slices.Index(g.oversized, e); i >= 0 {
			g.oversized = slices.Delete(g.oversized, i, i+1)
		}
		return
	}
	for y := minY; ; y++ {
		for x := minX; ; x++ {
			k := cellKey(x, y)
			b := g.buckets[k]
			// slices.Delete preserves insertion order and clears the
			// vacated tail slot.
			if i := slices.Index(b, e); i >= 0 {
				b = slices.Delete(b, i, i+1)
			}
			if len(b) == 0 {
				delete(g.buckets, k)
			} else {
				g.buckets[k] = b
			}
			if x == maxX {
				break
			}
		}
		if y == maxY {
			break
		}
	}
}

// Insert indexes circle c under id. Insert panics on a duplicate id (a
// programming error — use Move to relocate an entry).
func (g *Grid) Insert(id int, c Circle) {
	if _, dup := g.items[id]; dup {
		panic(fmt.Sprintf("geo: grid id %d already inserted", id))
	}
	e := &gridEntry{id: id, c: c}
	g.setRange(e)
	g.items[id] = e
	g.link(e)
}

// Remove deletes the entry under id and reports whether it existed.
func (g *Grid) Remove(id int) bool {
	e, ok := g.items[id]
	if !ok {
		return false
	}
	g.unlink(e, e.minX, e.maxX, e.minY, e.maxY, e.oversized)
	delete(g.items, id)
	return true
}

// Move re-indexes id under a new circle. When the new circle occupies the
// same cell range the entry is updated in place without touching any
// bucket — the cheap steady-state path for a mobile listener drifting
// within a cell. Move panics on an unknown id.
func (g *Grid) Move(id int, c Circle) {
	e, ok := g.items[id]
	if !ok {
		panic(fmt.Sprintf("geo: grid id %d not inserted", id))
	}
	oldMinX, oldMaxX, oldMinY, oldMaxY := e.minX, e.maxX, e.minY, e.maxY
	oldOversized := e.oversized
	e.c = c
	g.setRange(e)
	if e.oversized == oldOversized &&
		(e.oversized || (e.minX == oldMinX && e.maxX == oldMaxX && e.minY == oldMinY && e.maxY == oldMaxY)) {
		return
	}
	g.unlink(e, oldMinX, oldMaxX, oldMinY, oldMaxY, oldOversized)
	g.link(e)
}

// AppendCovering appends the ids of every entry whose circle contains p
// and returns the extended slice. Only the single cell containing p (plus
// the overflow list) is scanned; ids appear in insertion order, bucketed
// entries before oversized ones. It performs no allocation when dst has
// capacity.
func (g *Grid) AppendCovering(dst []int, p Point) []int {
	for _, e := range g.buckets[cellKey(g.cellCoord(p.X), g.cellCoord(p.Y))] {
		if e.c.Contains(p) {
			dst = append(dst, e.id)
		}
	}
	for _, e := range g.oversized {
		if e.c.Contains(p) {
			dst = append(dst, e.id)
		}
	}
	return dst
}

// AppendIntersecting appends the ids of every entry whose circle
// intersects q and returns the extended slice. Cells under q's bounding
// box are visited in row-major order and the result is deduplicated into
// ascending id order (an entry spans every cell its circle's bounding
// box touches), so the output is deterministic regardless of insertion
// history.
func (g *Grid) AppendIntersecting(dst []int, q Circle) []int {
	r := q.R
	if r < 0 || math.IsNaN(r) {
		r = 0
	}
	minX := g.cellCoord(q.Center.X - r)
	maxX := g.cellCoord(q.Center.X + r)
	minY := g.cellCoord(q.Center.Y - r)
	maxY := g.cellCoord(q.Center.Y + r)
	start := len(dst)
	if span := (int64(maxX) - int64(minX) + 1) * (int64(maxY) - int64(minY) + 1); span > maxEntryCells || span > int64(len(g.items)) {
		// The query covers more cells than scanning every entry would
		// cost; the sorted dedup below makes the map order irrelevant.
		for _, e := range g.items {
			if e.c.IntersectsCircle(q) {
				dst = append(dst, e.id)
			}
		}
		sort := dst[start:]
		slices.Sort(sort)
		return dst[:start+len(sort)]
	}
	for y := minY; ; y++ {
		for x := minX; ; x++ {
			for _, e := range g.buckets[cellKey(x, y)] {
				if e.c.IntersectsCircle(q) {
					dst = append(dst, e.id)
				}
			}
			if x == maxX {
				break
			}
		}
		if y == maxY {
			break
		}
	}
	for _, e := range g.oversized {
		if e.c.IntersectsCircle(q) {
			dst = append(dst, e.id)
		}
	}
	sort := dst[start:]
	slices.Sort(sort)
	kept := slices.Compact(sort)
	return dst[:start+len(kept)]
}

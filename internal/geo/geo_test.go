package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(Pt(3, 4)), Pt(4, 6)},
		{"sub", Pt(1, 2).Sub(Pt(3, 4)), Pt(-2, -2)},
		{"scale", Pt(1, -2).Scale(2.5), Pt(2.5, -5)},
		{"lerp start", Pt(0, 0).Lerp(Pt(10, 20), 0), Pt(0, 0)},
		{"lerp end", Pt(0, 0).Lerp(Pt(10, 20), 1), Pt(10, 20)},
		{"lerp mid", Pt(0, 0).Lerp(Pt(10, 20), 0.5), Pt(5, 10)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !almostEqual(tt.got.X, tt.want.X) || !almostEqual(tt.got.Y, tt.want.Y) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 1), Pt(1, 1), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"pythagoras", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-3, -4), Pt(0, 0), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want) {
				t.Errorf("Dist = %v, want %v", got, tt.want)
			}
			if got := tt.p.DistSq(tt.q); !almostEqual(got, tt.want*tt.want) {
				t.Errorf("DistSq = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestUnit(t *testing.T) {
	if got := (Point{}).Unit(); got != (Point{}) {
		t.Errorf("Unit of origin = %v, want origin", got)
	}
	u := Pt(3, 4).Unit()
	if !almostEqual(u.Norm(), 1) {
		t.Errorf("Unit norm = %v, want 1", u.Norm())
	}
}

func TestRect(t *testing.T) {
	r := RectWH(0, 0, 10, 20)
	if got := r.Dx(); got != 10 {
		t.Errorf("Dx = %v, want 10", got)
	}
	if got := r.Dy(); got != 20 {
		t.Errorf("Dy = %v, want 20", got)
	}
	if got := r.Area(); got != 200 {
		t.Errorf("Area = %v, want 200", got)
	}
	if got := r.Center(); got != Pt(5, 10) {
		t.Errorf("Center = %v, want (5,10)", got)
	}

	tests := []struct {
		name string
		p    Point
		in   bool
	}{
		{"inside", Pt(5, 5), true},
		{"on corner", Pt(0, 0), true},
		{"on edge", Pt(10, 5), true},
		{"outside x", Pt(11, 5), false},
		{"outside y", Pt(5, -1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Contains(tt.p); got != tt.in {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.in)
			}
		})
	}
}

func TestRectClamp(t *testing.T) {
	r := RectWH(0, 0, 10, 10)
	tests := []struct {
		p, want Point
	}{
		{Pt(5, 5), Pt(5, 5)},
		{Pt(-5, 5), Pt(0, 5)},
		{Pt(15, 15), Pt(10, 10)},
		{Pt(5, -3), Pt(5, 0)},
	}
	for _, tt := range tests {
		if got := r.Clamp(tt.p); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlapping", RectWH(5, 5, 10, 10), true},
		{"touching edge", RectWH(10, 0, 5, 5), true},
		{"disjoint", RectWH(20, 20, 5, 5), false},
		{"contained", RectWH(2, 2, 2, 2), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(a); got != tt.want {
				t.Errorf("Intersects (reversed) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCircle(t *testing.T) {
	c := Circle{Center: Pt(0, 0), R: 5}
	if !c.Contains(Pt(3, 4)) {
		t.Error("point on boundary should be contained")
	}
	if c.Contains(Pt(4, 4)) {
		t.Error("point outside should not be contained")
	}
	if !c.IntersectsCircle(Circle{Center: Pt(8, 0), R: 3}) {
		t.Error("touching circles should intersect")
	}
	if c.IntersectsCircle(Circle{Center: Pt(20, 0), R: 3}) {
		t.Error("distant circles should not intersect")
	}
	if !c.IntersectsRect(RectWH(4, -1, 10, 2)) {
		t.Error("circle should intersect overlapping rect")
	}
	if c.IntersectsRect(RectWH(10, 10, 2, 2)) {
		t.Error("circle should not intersect distant rect")
	}
}

func TestWeightedCentroid(t *testing.T) {
	t.Run("equal weights", func(t *testing.T) {
		got, err := WeightedCentroid([]Point{Pt(0, 0), Pt(10, 0)}, []float64{1, 1})
		if err != nil {
			t.Fatal(err)
		}
		if got != Pt(5, 0) {
			t.Errorf("got %v, want (5,0)", got)
		}
	})
	t.Run("skewed weights", func(t *testing.T) {
		got, err := WeightedCentroid([]Point{Pt(0, 0), Pt(10, 0)}, []float64{3, 1})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got.X, 2.5) {
			t.Errorf("got %v, want x=2.5", got)
		}
	})
	t.Run("zero total weight", func(t *testing.T) {
		if _, err := WeightedCentroid([]Point{Pt(1, 1)}, []float64{0}); err == nil {
			t.Error("want error for zero total weight")
		}
	})
	t.Run("negative weight", func(t *testing.T) {
		if _, err := WeightedCentroid([]Point{Pt(1, 1)}, []float64{-1}); err == nil {
			t.Error("want error for negative weight")
		}
	})
	t.Run("length mismatch", func(t *testing.T) {
		if _, err := WeightedCentroid([]Point{Pt(1, 1)}, []float64{1, 2}); err == nil {
			t.Error("want error for length mismatch")
		}
	})
}

// Property: a weighted centroid with non-negative weights always lies inside
// the bounding box of its input points.
func TestWeightedCentroidInBoundingBox(t *testing.T) {
	f := func(xs, ys []int8, ws []uint8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if len(ws) < n {
			n = len(ws)
		}
		if n == 0 {
			return true
		}
		points := make([]Point, n)
		weights := make([]float64, n)
		var total float64
		for i := 0; i < n; i++ {
			points[i] = Pt(float64(xs[i]), float64(ys[i]))
			weights[i] = float64(ws[i])
			total += weights[i]
		}
		c, err := WeightedCentroid(points, weights)
		if total <= 0 {
			return err != nil
		}
		if err != nil {
			return false
		}
		box, ok := BoundingBox(points)
		if !ok {
			return false
		}
		const eps = 1e-9
		return c.X >= box.Min.X-eps && c.X <= box.Max.X+eps &&
			c.Y >= box.Min.Y-eps && c.Y <= box.Max.Y+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundingBox(t *testing.T) {
	if _, ok := BoundingBox(nil); ok {
		t.Error("empty slice should report ok=false")
	}
	box, ok := BoundingBox([]Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)})
	if !ok {
		t.Fatal("want ok")
	}
	want := Rect{Min: Pt(-2, -1), Max: Pt(4, 5)}
	if box != want {
		t.Errorf("got %v, want %v", box, want)
	}
}

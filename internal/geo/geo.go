// Package geo provides the small amount of planar geometry shared by the
// sensor field, the receiver/transmitter arrays, the location service and
// the message replicator: points, rectangles, circles and weighted
// centroids.
//
// Coordinates are in metres on a flat plane, which is the model the paper
// implies for a deployed sensor field (receivers with circular reception
// zones, sensors roaming in and out of coverage).
package geo

import (
	"errors"
	"fmt"
	"math"
)

// Point is a position on the field plane, in metres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as radio range checks.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Unit returns the unit vector in the direction of p, or the zero point if
// p is the origin.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return Point{}
	}
	return p.Scale(1 / n)
}

// Lerp linearly interpolates between p and q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String formats the point as "(x, y)" with two decimals.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right; a Rect with Min == Max is empty but valid.
type Rect struct {
	Min, Max Point
}

// RectWH returns the rectangle anchored at (x, y) with width w and height h.
func RectWH(x, y, w, h float64) Rect {
	return Rect{Min: Point{x, y}, Max: Point{x + w, y + h}}
}

// Dx returns the width of r.
func (r Rect) Dx() float64 { return r.Max.X - r.Min.X }

// Dy returns the height of r.
func (r Rect) Dy() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Dx() * r.Dy() }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Intersects reports whether r and s overlap (touching edges count).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Circle is a disc with a centre and radius, used for reception and
// transmission coverage zones and for location-uncertainty areas.
type Circle struct {
	Center Point
	R      float64
}

// Contains reports whether p lies inside c (inclusive of the boundary).
func (c Circle) Contains(p Point) bool {
	return c.Center.DistSq(p) <= c.R*c.R
}

// IntersectsCircle reports whether c and d overlap.
func (c Circle) IntersectsCircle(d Circle) bool {
	rr := c.R + d.R
	return c.Center.DistSq(d.Center) <= rr*rr
}

// IntersectsRect reports whether c overlaps the rectangle r.
func (c Circle) IntersectsRect(r Rect) bool {
	nearest := r.Clamp(c.Center)
	return c.Contains(nearest)
}

// ErrNoWeight is returned by WeightedCentroid when the total weight is not
// strictly positive.
var ErrNoWeight = errors.New("geo: total weight must be positive")

// WeightedCentroid returns the weighted mean of points. It is the estimator
// the location service uses to infer a sensor position from the receivers
// that heard it, weighted by received signal strength. Weights must be
// non-negative and sum to a positive value; len(points) must equal
// len(weights).
func WeightedCentroid(points []Point, weights []float64) (Point, error) {
	if len(points) != len(weights) {
		return Point{}, fmt.Errorf("geo: %d points but %d weights", len(points), len(weights))
	}
	var sum Point
	var total float64
	for i, p := range points {
		w := weights[i]
		if w < 0 {
			return Point{}, fmt.Errorf("geo: negative weight %v at index %d", w, i)
		}
		sum.X += p.X * w
		sum.Y += p.Y * w
		total += w
	}
	if total <= 0 {
		return Point{}, ErrNoWeight
	}
	return sum.Scale(1 / total), nil
}

// Centroid returns the unweighted mean of points.
func Centroid(points []Point) (Point, error) {
	weights := make([]float64, len(points))
	for i := range weights {
		weights[i] = 1
	}
	return WeightedCentroid(points, weights)
}

// BoundingBox returns the smallest Rect containing every point. It reports
// ok=false for an empty slice.
func BoundingBox(points []Point) (r Rect, ok bool) {
	if len(points) == 0 {
		return Rect{}, false
	}
	r = Rect{Min: points[0], Max: points[0]}
	for _, p := range points[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r, true
}

package geo

import (
	"math/rand/v2"
	"slices"
	"testing"
)

// bruteForce mirrors the queries a Grid answers, over a plain map.
type bruteForce map[int]Circle

func (b bruteForce) covering(p Point) []int {
	var ids []int
	for id, c := range b {
		if c.Contains(p) {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	return ids
}

func (b bruteForce) intersecting(q Circle) []int {
	var ids []int
	for id, c := range b {
		if c.IntersectsCircle(q) {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	return ids
}

func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	slices.Sort(out)
	return out
}

func TestGridValidation(t *testing.T) {
	for _, cell := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(%v): want panic", cell)
				}
			}()
			NewGrid(cell)
		}()
	}
	g := NewGrid(10)
	g.Insert(1, Circle{Center: Pt(0, 0), R: 5})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate Insert: want panic")
			}
		}()
		g.Insert(1, Circle{Center: Pt(1, 1), R: 5})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Move of unknown id: want panic")
			}
		}()
		g.Move(2, Circle{Center: Pt(1, 1), R: 5})
	}()
	if g.Remove(99) {
		t.Error("Remove of unknown id reported true")
	}
	if !g.Remove(1) || g.Len() != 0 {
		t.Error("Remove of known id failed")
	}
}

// TestGridQueryEqualsBruteForceProperty drives a random op sequence
// (insert/move/remove, wildly mixed radii including oversized entries)
// and checks 10k random point and circle queries against the brute-force
// filter after every phase.
func TestGridQueryEqualsBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xC0FFEE, 0xD00D))
	const fieldSize = 2000.0
	randPoint := func() Point {
		return Pt(rng.Float64()*fieldSize-fieldSize/2, rng.Float64()*fieldSize-fieldSize/2)
	}
	randRadius := func() float64 {
		switch rng.IntN(10) {
		case 0:
			return 0 // degenerate: contains only its centre
		case 1:
			return 5000 + rng.Float64()*5000 // oversized for a 25 m cell
		default:
			return rng.Float64() * 120
		}
	}

	g := NewGrid(25)
	ref := bruteForce{}
	nextID := 0

	mutate := func(ops int) {
		for i := 0; i < ops; i++ {
			switch op := rng.IntN(10); {
			case op < 5 || len(ref) == 0: // insert
				c := Circle{Center: randPoint(), R: randRadius()}
				g.Insert(nextID, c)
				ref[nextID] = c
				nextID++
			case op < 8: // move a random existing entry
				for id := range ref {
					c := Circle{Center: randPoint(), R: randRadius()}
					g.Move(id, c)
					ref[id] = c
					break
				}
			default: // remove
				for id := range ref {
					if !g.Remove(id) {
						t.Fatalf("Remove(%d) = false for live entry", id)
					}
					delete(ref, id)
					break
				}
			}
		}
		if g.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", g.Len(), len(ref))
		}
	}

	check := func(queries int) {
		t.Helper()
		for i := 0; i < queries; i++ {
			p := randPoint()
			got := sortedCopy(g.AppendCovering(nil, p))
			want := ref.covering(p)
			if !slices.Equal(got, want) {
				t.Fatalf("AppendCovering(%v) = %v, want %v", p, got, want)
			}
			q := Circle{Center: randPoint(), R: randRadius()}
			gotC := g.AppendIntersecting(nil, q)
			wantC := ref.intersecting(q)
			if !slices.Equal(gotC, wantC) {
				t.Fatalf("AppendIntersecting(%v) = %v, want %v", q, gotC, wantC)
			}
		}
	}

	mutate(300)
	check(4000)
	mutate(500) // churn: moves and removes against the same entries
	check(4000)
	mutate(200)
	check(2000)
}

// TestGridPointQueryOrderIsInsertionOrder pins the determinism contract
// the radio medium relies on: entries sharing a cell come back in attach
// (insertion) order.
func TestGridPointQueryOrderIsInsertionOrder(t *testing.T) {
	g := NewGrid(100)
	for id := 0; id < 8; id++ {
		g.Insert(id, Circle{Center: Pt(float64(id), 0), R: 50})
	}
	got := g.AppendCovering(nil, Pt(4, 0))
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if !slices.Equal(got, want) {
		t.Fatalf("order = %v, want insertion order %v", got, want)
	}
	// Removing from the middle preserves the relative order of the rest.
	g.Remove(3)
	got = g.AppendCovering(nil, Pt(4, 0))
	want = []int{0, 1, 2, 4, 5, 6, 7}
	if !slices.Equal(got, want) {
		t.Fatalf("order after remove = %v, want %v", got, want)
	}
}

// TestGridMoveWithinCellKeepsEntryFindable covers the cheap Move path
// (same cell range, no relink) still updating the circle used for exact
// checks.
func TestGridMoveWithinCellKeepsEntryFindable(t *testing.T) {
	g := NewGrid(1000)
	g.Insert(7, Circle{Center: Pt(100, 100), R: 10})
	g.Move(7, Circle{Center: Pt(130, 100), R: 10}) // same cell, new centre
	if got := g.AppendCovering(nil, Pt(100, 100)); len(got) != 0 {
		t.Fatalf("stale circle still matches old centre: %v", got)
	}
	if got := g.AppendCovering(nil, Pt(130, 100)); !slices.Equal(got, []int{7}) {
		t.Fatalf("moved entry not found: %v", got)
	}
}

func BenchmarkGridPointQuery(b *testing.B) {
	g := NewGrid(50)
	rng := rand.New(rand.NewPCG(1, 2))
	for id := 0; id < 1024; id++ {
		g.Insert(id, Circle{Center: Pt(rng.Float64()*5000, rng.Float64()*5000), R: 60})
	}
	dst := make([]int, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = g.AppendCovering(dst[:0], Pt(2500, 2500))
	}
}
